//! Replayable regression cases: minimal fault schedules persisted as JSON.
//!
//! When the explorer shrinks a violation, the resulting schedule is saved as
//! a [`RegressionCase`] under `tests/regressions/`. Each case pins the
//! session seed, the scenario scale, the windows, and the expected outcome,
//! so a single [`RegressionCase::check`] call replays it bit-for-bit against
//! the standard oracle set forever after.

use serde::{Deserialize, Serialize};

use crate::explore::{run_plan, RunOutcome};
use crate::oracles::standard_oracles;
use crate::plan::FaultWindow;
use crate::scenario::Scenario;

/// Current on-disk schema version; bump on incompatible format changes.
pub const SCHEMA_VERSION: u32 = 1;

/// A persisted, replayable fault schedule with its expected outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct RegressionCase {
    /// On-disk format version (currently 1).
    pub schema_version: u32,
    /// What this case pins down, for humans reading the corpus.
    pub description: String,
    /// Quick (test-sized) or full scenario.
    pub quick: bool,
    /// Seed of the replayed session.
    pub session_seed: u64,
    /// The fault schedule, at window granularity.
    pub windows: Vec<FaultWindow>,
    /// Name of the oracle expected to fire, or `None` for a clean run.
    pub expect_violation: Option<String>,
}

impl RegressionCase {
    /// Serializes the case as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("regression case serializes")
    }

    /// Parses a case from JSON, rejecting unknown fields and other schema
    /// versions.
    pub fn from_json(json: &str) -> Result<RegressionCase, String> {
        let case: RegressionCase = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if case.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {} (expected {SCHEMA_VERSION})",
                case.schema_version
            ));
        }
        Ok(case)
    }

    /// The scenario this case replays under.
    pub fn scenario(&self) -> Scenario {
        if self.quick {
            Scenario::quick(self.session_seed)
        } else {
            Scenario::full(self.session_seed)
        }
    }

    /// Replays the schedule against the standard oracle set.
    pub fn replay(&self) -> RunOutcome {
        let scn = self.scenario();
        run_plan(&scn, &self.windows, standard_oracles(&scn))
    }

    /// Replays and compares the outcome against `expect_violation`.
    /// `Ok(())` when they match; `Err` describes the divergence.
    pub fn check(&self) -> Result<(), String> {
        let outcome = self.replay();
        match (&self.expect_violation, &outcome.violation) {
            (None, None) => Ok(()),
            (Some(expected), Some(got)) if *expected == got.oracle => Ok(()),
            (None, Some(got)) => {
                Err(format!("'{}' expected a clean run, got {got}", self.description))
            }
            (Some(expected), None) => Err(format!(
                "'{}' expected oracle {expected} to fire, but the run was clean",
                self.description
            )),
            (Some(expected), Some(got)) => {
                Err(format!("'{}' expected oracle {expected} to fire, got {got}", self.description))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaclass_netsim::{NodeId, SimTime};

    fn sample() -> RegressionCase {
        RegressionCase {
            schema_version: SCHEMA_VERSION,
            description: "backbone flap survives".to_string(),
            quick: true,
            session_seed: 7,
            windows: vec![FaultWindow::LinkFlap {
                a: NodeId::from_index(0),
                b: NodeId::from_index(3),
                from: SimTime::from_millis(900),
                until: SimTime::from_millis(1300),
            }],
            expect_violation: None,
        }
    }

    #[test]
    fn json_round_trip_preserves_the_case() {
        let case = sample();
        let back = RegressionCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back.session_seed, case.session_seed);
        assert_eq!(back.windows.len(), 1);
        assert_eq!(back.expect_violation, None);
    }

    #[test]
    fn unknown_fields_and_wrong_versions_are_rejected() {
        let mut json = sample().to_json();
        json = json.replacen("\"schema_version\": 1", "\"schema_version\": 99", 1);
        assert!(RegressionCase::from_json(&json).is_err());
        let with_extra = sample().to_json().replacen(
            "\"schema_version\"",
            "\"surprise\": true,\n  \"schema_version\"",
            1,
        );
        assert!(RegressionCase::from_json(&with_extra).is_err());
    }
}
