//! The [`Oracle`] trait, violations, and the registry the engine invokes.
//!
//! Oracles are checked at three boundaries:
//!
//! 1. **Engine events** — every send/delivery/drop/timer/fault, via the
//!    netsim [`SimObserver`](metaclass_netsim::SimObserver) hook;
//! 2. **Probes** — between run slices, with full read access to the
//!    [`ClassroomSession`] (node state, peer health, avatar freshness);
//! 3. **End** — once, after the settle window, for convergence claims.
//!
//! The registry records the *first* violation and goes quiet afterwards, so
//! a failing run is attributed to exactly one oracle — the signature the
//! shrinker preserves while minimizing the fault schedule.

use std::sync::{Arc, Mutex};

use metaclass_core::ClassroomSession;
use metaclass_netsim::{SimEvent, SimTime, SimView};

use crate::scenario::Topology;

/// A broken invariant: which oracle, when, and what it saw.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the oracle that fired.
    pub oracle: &'static str,
    /// Simulated time of detection.
    pub at: SimTime,
    /// Human-readable description of the observed inconsistency.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at {} ns: {}", self.oracle, self.at.as_nanos(), self.detail)
    }
}

/// Read-only context handed to probe- and end-boundary checks.
pub struct Probe<'a> {
    /// The session under check.
    pub session: &'a ClassroomSession,
    /// Precomputed node/avatar layout of the session.
    pub topology: &'a Topology,
    /// Probe time.
    pub now: SimTime,
    /// Whether `now` lies outside every fault disturbance region (fault
    /// windows inflated by the detection/hold/resync margin). Freshness
    /// bounds only apply in quiet periods.
    pub quiet: bool,
}

/// An invariant checked against a running simulation.
///
/// All methods default to passing, so an oracle implements only the
/// boundaries it cares about. Return `Err(detail)` to report a violation;
/// the registry stamps it with the oracle's name and the current time.
pub trait Oracle: Send {
    /// Stable oracle name; used as the failure signature during shrinking
    /// and in regression-case expectations.
    fn name(&self) -> &'static str;

    /// Engine-boundary check, called on every observable event.
    fn on_sim_event(&mut self, _view: &SimView<'_>, _event: &SimEvent<'_>) -> Result<(), String> {
        Ok(())
    }

    /// Probe-boundary check, called between run slices.
    fn on_probe(&mut self, _probe: &Probe<'_>) -> Result<(), String> {
        Ok(())
    }

    /// Final check after the settle window (skipped if a violation already
    /// occurred).
    fn on_end(&mut self, _probe: &Probe<'_>) -> Result<(), String> {
        Ok(())
    }
}

/// Runs a set of oracles and records the first violation.
pub struct OracleRegistry {
    oracles: Vec<Box<dyn Oracle>>,
    violation: Option<Violation>,
}

impl OracleRegistry {
    /// Creates a registry over `oracles`.
    pub fn new(oracles: Vec<Box<dyn Oracle>>) -> Self {
        OracleRegistry { oracles, violation: None }
    }

    /// The first recorded violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// Checks every oracle against an engine event.
    pub fn check_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) {
        if self.violation.is_some() {
            return;
        }
        for oracle in &mut self.oracles {
            if let Err(detail) = oracle.on_sim_event(view, event) {
                self.violation = Some(Violation { oracle: oracle.name(), at: view.time(), detail });
                return;
            }
        }
    }

    /// Checks every oracle at a probe boundary.
    pub fn check_probe(&mut self, probe: &Probe<'_>) {
        if self.violation.is_some() {
            return;
        }
        for oracle in &mut self.oracles {
            if let Err(detail) = oracle.on_probe(probe) {
                self.violation = Some(Violation { oracle: oracle.name(), at: probe.now, detail });
                return;
            }
        }
    }

    /// Runs the end-of-run checks.
    pub fn check_end(&mut self, probe: &Probe<'_>) {
        if self.violation.is_some() {
            return;
        }
        for oracle in &mut self.oracles {
            if let Err(detail) = oracle.on_end(probe) {
                self.violation = Some(Violation { oracle: oracle.name(), at: probe.now, detail });
                return;
            }
        }
    }
}

/// A registry shared between the engine observer (which sees every event)
/// and the runner (which probes between slices). Single-threaded in
/// practice; the mutex only satisfies `Send` so sessions stay movable.
pub type SharedRegistry = Arc<Mutex<OracleRegistry>>;

/// Wraps `oracles` in a [`SharedRegistry`].
pub fn shared(oracles: Vec<Box<dyn Oracle>>) -> SharedRegistry {
    Arc::new(Mutex::new(OracleRegistry::new(oracles)))
}

/// An engine observer forwarding every event into the shared registry.
/// Install with `sim.set_observer(observer_for(&registry))`.
pub fn observer_for(
    registry: &SharedRegistry,
) -> impl FnMut(&SimView<'_>, &SimEvent<'_>) + Send + 'static {
    let registry = Arc::clone(registry);
    move |view, event| {
        registry.lock().expect("oracle registry poisoned").check_event(view, event);
    }
}
