//! The invariant-oracle library.
//!
//! Engine-boundary oracles (clock monotonicity, packet conservation,
//! partition isolation, crashed-node silence) check every observable event;
//! probe-boundary oracles (avatar staleness, resync convergence) inspect the
//! session between run slices. [`standard_oracles`] assembles the default
//! set the explorer and the `bench simcheck` CLI run.

use metaclass_edge::{EdgeServerNode, PeerState, RemoteAvatarPresentation};
use metaclass_netsim::{FaultAction, NodeId, SimEvent, SimTime, SimView};

use crate::oracle::{Oracle, Probe};
use crate::scenario::Scenario;

/// Simulated time never decreases, and nothing is delivered before it was
/// sent.
#[derive(Debug, Default)]
pub struct ClockMonotonicity {
    last: SimTime,
}

impl Oracle for ClockMonotonicity {
    fn name(&self) -> &'static str {
        "clock-monotonicity"
    }

    fn on_sim_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        let now = view.time();
        if now < self.last {
            return Err(format!(
                "time went backwards: {} ns after {} ns",
                now.as_nanos(),
                self.last.as_nanos()
            ));
        }
        self.last = now;
        if let SimEvent::Delivered { sent_at, src, dst, .. } = event {
            if *sent_at > now {
                return Err(format!(
                    "{src} -> {dst} delivered at {} ns before its send at {} ns",
                    now.as_nanos(),
                    sent_at.as_nanos()
                ));
            }
        }
        Ok(())
    }
}

/// Every message is accounted for: deliveries plus drops never exceed sends
/// plus injections (in-flight count stays non-negative at every instant).
#[derive(Debug, Default)]
pub struct PacketConservation {
    sent: u64,
    injected: u64,
    delivered: u64,
    dropped: u64,
    no_route: u64,
}

impl Oracle for PacketConservation {
    fn name(&self) -> &'static str {
        "packet-conservation"
    }

    fn on_sim_event(&mut self, _view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        match event {
            SimEvent::Sent { .. } => self.sent += 1,
            SimEvent::Injected { .. } => self.injected += 1,
            SimEvent::Delivered { .. } => self.delivered += 1,
            SimEvent::Dropped { .. } => self.dropped += 1,
            SimEvent::NoRoute { .. } => self.no_route += 1,
            _ => return Ok(()),
        }
        let terminated = self.delivered + self.dropped + self.no_route;
        let originated = self.sent + self.injected;
        if terminated > originated {
            return Err(format!(
                "{terminated} messages terminated but only {originated} originated \
                 (delivered {}, dropped {}, no-route {})",
                self.delivered, self.dropped, self.no_route
            ));
        }
        Ok(())
    }
}

/// No message crosses an active full-coverage partition: anything sent
/// strictly after a partition severed the sender's group from the receiver's
/// must not be delivered until a heal.
///
/// Mirrors engine semantics exactly: a `Heal` clears *all* active partitions
/// (the engine heals every partition-severed link), and only partitions
/// whose groups cover every node are enforced — with uncovered nodes a relay
/// path could legitimately survive.
#[derive(Debug, Default)]
pub struct PartitionIsolation {
    /// Active partitions as (start time, group list).
    active: Vec<(SimTime, Vec<Vec<NodeId>>)>,
}

fn group_of(groups: &[Vec<NodeId>], node: NodeId) -> Option<usize> {
    groups.iter().position(|g| g.contains(&node))
}

impl Oracle for PartitionIsolation {
    fn name(&self) -> &'static str {
        "partition-isolation"
    }

    fn on_sim_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        match event {
            SimEvent::Fault { action } => {
                match action {
                    FaultAction::Partition { groups } => {
                        let covered: usize = groups.iter().map(Vec::len).sum();
                        if covered == view.node_count() {
                            self.active.push((view.time(), groups.clone()));
                        }
                    }
                    FaultAction::Heal => self.active.clear(),
                    _ => {}
                }
                Ok(())
            }
            SimEvent::Delivered { src, dst, sent_at, .. } => {
                for (since, groups) in &self.active {
                    let (ga, gb) = (group_of(groups, *src), group_of(groups, *dst));
                    if let (Some(ga), Some(gb)) = (ga, gb) {
                        if ga != gb && *sent_at > *since {
                            return Err(format!(
                                "{src} -> {dst} delivered across a partition active since \
                                 {} ns (sent at {} ns)",
                                since.as_nanos(),
                                sent_at.as_nanos()
                            ));
                        }
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Crashed nodes are silent: they receive no deliveries and fire no timers
/// until restarted.
#[derive(Debug, Default)]
pub struct CrashedSilence;

impl Oracle for CrashedSilence {
    fn name(&self) -> &'static str {
        "crashed-silence"
    }

    fn on_sim_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        match event {
            SimEvent::Delivered { src, dst, .. } if view.is_crashed(*dst) => {
                Err(format!("{src} -> {dst} delivered to a crashed node"))
            }
            SimEvent::TimerFired { node, tag } if view.is_crashed(*node) => {
                Err(format!("timer tag {tag} fired on crashed node {node}"))
            }
            _ => Ok(()),
        }
    }
}

/// In quiet periods every remote avatar is presented live and within the
/// dead-reckoning freshness bound — degradation (hold/freeze) is only
/// acceptable while a fault's disturbance region is open.
#[derive(Debug)]
pub struct StalenessBound {
    bound: metaclass_netsim::SimDuration,
    warmup: SimTime,
}

impl StalenessBound {
    /// Creates the oracle with the scenario's bound and warmup.
    pub fn new(scn: &Scenario) -> Self {
        StalenessBound { bound: scn.staleness_bound(), warmup: scn.warmup }
    }

    fn check_edges(&self, probe: &Probe<'_>, context: &str) -> Result<(), String> {
        for (k, &edge_id) in probe.topology.edges.iter().enumerate() {
            let edge = probe
                .session
                .sim()
                .node_as::<EdgeServerNode>(edge_id)
                .ok_or_else(|| format!("node {edge_id} is not an edge server"))?;
            for avatar in probe.topology.remote_avatars_for(k) {
                let presentation = edge.presentation_of(avatar, probe.now);
                if presentation != RemoteAvatarPresentation::Live {
                    return Err(format!(
                        "{context}: edge {edge_id} presents avatar {avatar:?} as \
                         {presentation:?} in a quiet period"
                    ));
                }
                match edge.remote_captured_at(avatar) {
                    None => {
                        return Err(format!(
                            "{context}: edge {edge_id} has no state for avatar {avatar:?}"
                        ))
                    }
                    Some(t) => {
                        let staleness = probe.now.duration_since(t);
                        if staleness > self.bound {
                            return Err(format!(
                                "{context}: avatar {avatar:?} on edge {edge_id} is \
                                 {} ms stale (bound {} ms)",
                                staleness.as_nanos() / 1_000_000,
                                self.bound.as_nanos() / 1_000_000
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Oracle for StalenessBound {
    fn name(&self) -> &'static str {
        "staleness-bound"
    }

    fn on_probe(&mut self, probe: &Probe<'_>) -> Result<(), String> {
        if !probe.quiet || probe.now < self.warmup {
            return Ok(());
        }
        self.check_edges(probe, "probe")
    }
}

/// After the last fault heals and the settle window elapses, the session has
/// fully converged: every server sees its peers up, and every remote avatar
/// is live and fresh again (post-heal resync worked).
#[derive(Debug)]
pub struct ResyncConvergence {
    staleness: StalenessBound,
}

impl ResyncConvergence {
    /// Creates the oracle for the scenario.
    pub fn new(scn: &Scenario) -> Self {
        ResyncConvergence { staleness: StalenessBound::new(scn) }
    }
}

impl Oracle for ResyncConvergence {
    fn name(&self) -> &'static str {
        "resync-convergence"
    }

    fn on_end(&mut self, probe: &Probe<'_>) -> Result<(), String> {
        let servers = probe.topology.servers();
        for &edge_id in &probe.topology.edges {
            let edge = probe
                .session
                .sim()
                .node_as::<EdgeServerNode>(edge_id)
                .ok_or_else(|| format!("node {edge_id} is not an edge server"))?;
            for &peer in servers.iter().filter(|&&p| p != edge_id) {
                let health = edge
                    .peer_health(peer)
                    .ok_or_else(|| format!("edge {edge_id} tracks no health for {peer}"))?;
                if health.state() != PeerState::Up {
                    return Err(format!(
                        "end: edge {edge_id} still sees peer {peer} as {:?}",
                        health.state()
                    ));
                }
            }
        }
        self.staleness.check_edges(probe, "end")
    }
}

/// Test instrument: trips on any executed fault action with the given code
/// (see [`FaultAction::code`]). Used to prove the explorer catches a broken
/// invariant and shrinks its schedule to a minimal plan.
#[derive(Debug)]
pub struct CanaryOracle {
    /// The fault code that triggers the canary.
    pub trip_code: u64,
}

impl Oracle for CanaryOracle {
    fn name(&self) -> &'static str {
        "canary"
    }

    fn on_sim_event(&mut self, _view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        if let SimEvent::Fault { action } = event {
            if action.code() == self.trip_code {
                return Err(format!("canary tripped on fault code {}", self.trip_code));
            }
        }
        Ok(())
    }
}

/// The default oracle set: every invariant the blueprint's consistency claim
/// rests on.
pub fn standard_oracles(scn: &Scenario) -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(ClockMonotonicity::default()),
        Box::new(PacketConservation::default()),
        Box::new(PartitionIsolation::default()),
        Box::new(CrashedSilence),
        Box::new(StalenessBound::new(scn)),
        Box::new(ResyncConvergence::new(scn)),
    ]
}
