//! The invariant-oracle library.
//!
//! Engine-boundary oracles (clock monotonicity, packet conservation,
//! partition isolation, crashed-node silence) check every observable event;
//! probe-boundary oracles (avatar staleness, resync convergence) inspect the
//! session between run slices. [`standard_oracles`] assembles the default
//! set the explorer and the `bench simcheck` CLI run.

use metaclass_edge::{
    ClientPoolNode, CloudServerNode, EdgeServerNode, PeerState, RemoteAvatarPresentation,
    RemoteClientNode, ShedTransition,
};
use metaclass_netsim::{FaultAction, NodeId, SimDuration, SimEvent, SimTime, SimView};

use crate::oracle::{Oracle, Probe};
use crate::scenario::Scenario;

/// Simulated time never decreases, and nothing is delivered before it was
/// sent.
#[derive(Debug, Default)]
pub struct ClockMonotonicity {
    last: SimTime,
}

impl Oracle for ClockMonotonicity {
    fn name(&self) -> &'static str {
        "clock-monotonicity"
    }

    fn on_sim_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        let now = view.time();
        if now < self.last {
            return Err(format!(
                "time went backwards: {} ns after {} ns",
                now.as_nanos(),
                self.last.as_nanos()
            ));
        }
        self.last = now;
        if let SimEvent::Delivered { sent_at, src, dst, .. } = event {
            if *sent_at > now {
                return Err(format!(
                    "{src} -> {dst} delivered at {} ns before its send at {} ns",
                    now.as_nanos(),
                    sent_at.as_nanos()
                ));
            }
        }
        Ok(())
    }
}

/// Every message is accounted for: deliveries plus drops never exceed sends
/// plus injections (in-flight count stays non-negative at every instant).
#[derive(Debug, Default)]
pub struct PacketConservation {
    sent: u64,
    injected: u64,
    delivered: u64,
    dropped: u64,
    no_route: u64,
}

impl Oracle for PacketConservation {
    fn name(&self) -> &'static str {
        "packet-conservation"
    }

    fn on_sim_event(&mut self, _view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        match event {
            SimEvent::Sent { .. } => self.sent += 1,
            SimEvent::Injected { .. } => self.injected += 1,
            SimEvent::Delivered { .. } => self.delivered += 1,
            SimEvent::Dropped { .. } => self.dropped += 1,
            SimEvent::NoRoute { .. } => self.no_route += 1,
            _ => return Ok(()),
        }
        let terminated = self.delivered + self.dropped + self.no_route;
        let originated = self.sent + self.injected;
        if terminated > originated {
            return Err(format!(
                "{terminated} messages terminated but only {originated} originated \
                 (delivered {}, dropped {}, no-route {})",
                self.delivered, self.dropped, self.no_route
            ));
        }
        Ok(())
    }
}

/// No message crosses an active full-coverage partition: anything sent
/// strictly after a partition severed the sender's group from the receiver's
/// must not be delivered until a heal.
///
/// Mirrors engine semantics exactly: a `Heal` clears *all* active partitions
/// (the engine heals every partition-severed link), and only partitions
/// whose groups cover every node are enforced — with uncovered nodes a relay
/// path could legitimately survive.
#[derive(Debug, Default)]
pub struct PartitionIsolation {
    /// Active partitions as (start time, group list).
    active: Vec<(SimTime, Vec<Vec<NodeId>>)>,
}

fn group_of(groups: &[Vec<NodeId>], node: NodeId) -> Option<usize> {
    groups.iter().position(|g| g.contains(&node))
}

impl Oracle for PartitionIsolation {
    fn name(&self) -> &'static str {
        "partition-isolation"
    }

    fn on_sim_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        match event {
            SimEvent::Fault { action } => {
                match action {
                    FaultAction::Partition { groups } => {
                        let covered: usize = groups.iter().map(Vec::len).sum();
                        if covered == view.node_count() {
                            self.active.push((view.time(), groups.clone()));
                        }
                    }
                    FaultAction::Heal => self.active.clear(),
                    _ => {}
                }
                Ok(())
            }
            SimEvent::Delivered { src, dst, sent_at, .. } => {
                for (since, groups) in &self.active {
                    let (ga, gb) = (group_of(groups, *src), group_of(groups, *dst));
                    if let (Some(ga), Some(gb)) = (ga, gb) {
                        if ga != gb && *sent_at > *since {
                            return Err(format!(
                                "{src} -> {dst} delivered across a partition active since \
                                 {} ns (sent at {} ns)",
                                since.as_nanos(),
                                sent_at.as_nanos()
                            ));
                        }
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Crashed nodes are silent: they receive no deliveries and fire no timers
/// until restarted.
#[derive(Debug, Default)]
pub struct CrashedSilence;

impl Oracle for CrashedSilence {
    fn name(&self) -> &'static str {
        "crashed-silence"
    }

    fn on_sim_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        match event {
            SimEvent::Delivered { src, dst, .. } if view.is_crashed(*dst) => {
                Err(format!("{src} -> {dst} delivered to a crashed node"))
            }
            SimEvent::TimerFired { node, tag } if view.is_crashed(*node) => {
                Err(format!("timer tag {tag} fired on crashed node {node}"))
            }
            _ => Ok(()),
        }
    }
}

/// In quiet periods every remote avatar is presented live and within the
/// dead-reckoning freshness bound — degradation (hold/freeze) is only
/// acceptable while a fault's disturbance region is open.
#[derive(Debug)]
pub struct StalenessBound {
    bound: metaclass_netsim::SimDuration,
    warmup: SimTime,
}

impl StalenessBound {
    /// Creates the oracle with the scenario's bound and warmup.
    pub fn new(scn: &Scenario) -> Self {
        StalenessBound { bound: scn.staleness_bound(), warmup: scn.warmup }
    }

    fn check_edges(&self, probe: &Probe<'_>, context: &str) -> Result<(), String> {
        for (k, &edge_id) in probe.topology.edges.iter().enumerate() {
            let edge = probe
                .session
                .sim()
                .node_as::<EdgeServerNode>(edge_id)
                .ok_or_else(|| format!("node {edge_id} is not an edge server"))?;
            for avatar in probe.topology.remote_avatars_for(k) {
                let presentation = edge.presentation_of(avatar, probe.now);
                if presentation != RemoteAvatarPresentation::Live {
                    return Err(format!(
                        "{context}: edge {edge_id} presents avatar {avatar:?} as \
                         {presentation:?} in a quiet period"
                    ));
                }
                match edge.remote_captured_at(avatar) {
                    None => {
                        return Err(format!(
                            "{context}: edge {edge_id} has no state for avatar {avatar:?}"
                        ))
                    }
                    Some(t) => {
                        let staleness = probe.now.duration_since(t);
                        if staleness > self.bound {
                            return Err(format!(
                                "{context}: avatar {avatar:?} on edge {edge_id} is \
                                 {} ms stale (bound {} ms)",
                                staleness.as_nanos() / 1_000_000,
                                self.bound.as_nanos() / 1_000_000
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Oracle for StalenessBound {
    fn name(&self) -> &'static str {
        "staleness-bound"
    }

    fn on_probe(&mut self, probe: &Probe<'_>) -> Result<(), String> {
        if !probe.quiet || probe.now < self.warmup {
            return Ok(());
        }
        self.check_edges(probe, "probe")
    }
}

/// After the last fault heals and the settle window elapses, the session has
/// fully converged: every server sees its peers up, and every remote avatar
/// is live and fresh again (post-heal resync worked).
#[derive(Debug)]
pub struct ResyncConvergence {
    staleness: StalenessBound,
}

impl ResyncConvergence {
    /// Creates the oracle for the scenario.
    pub fn new(scn: &Scenario) -> Self {
        ResyncConvergence { staleness: StalenessBound::new(scn) }
    }
}

impl Oracle for ResyncConvergence {
    fn name(&self) -> &'static str {
        "resync-convergence"
    }

    fn on_end(&mut self, probe: &Probe<'_>) -> Result<(), String> {
        let servers = probe.topology.servers();
        for &edge_id in &probe.topology.edges {
            let edge = probe
                .session
                .sim()
                .node_as::<EdgeServerNode>(edge_id)
                .ok_or_else(|| format!("node {edge_id} is not an edge server"))?;
            for &peer in servers.iter().filter(|&&p| p != edge_id) {
                let health = edge
                    .peer_health(peer)
                    .ok_or_else(|| format!("edge {edge_id} tracks no health for {peer}"))?;
                if health.state() != PeerState::Up {
                    return Err(format!(
                        "end: edge {edge_id} still sees peer {peer} as {:?}",
                        health.state()
                    ));
                }
            }
        }
        self.staleness.check_edges(probe, "end")
    }
}

/// No bounded queue ever exceeds its capacity: the whole point of the
/// backpressure design is that overload shows up as *counted drops and
/// deferrals*, never as unbounded memory. Checked at every probe against
/// the high-water marks, so a transient overshoot between probes is still
/// caught.
#[derive(Debug, Default)]
pub struct QueueBounds;

impl QueueBounds {
    fn check(probe: &Probe<'_>) -> Result<(), String> {
        let mut audit: Vec<(String, usize, usize)> = Vec::new();
        let cloud = probe
            .session
            .sim()
            .node_as::<CloudServerNode>(probe.topology.cloud)
            .ok_or("cloud node is not a CloudServerNode")?;
        audit.extend(cloud.overload_queues());
        for &edge_id in &probe.topology.edges {
            let edge = probe
                .session
                .sim()
                .node_as::<EdgeServerNode>(edge_id)
                .ok_or_else(|| format!("node {edge_id} is not an edge server"))?;
            audit.extend(edge.overload_queues());
        }
        for (name, max_depth, capacity) in audit {
            if max_depth > capacity {
                return Err(format!("queue {name} reached depth {max_depth}, capacity {capacity}"));
            }
        }
        Ok(())
    }
}

impl Oracle for QueueBounds {
    fn name(&self) -> &'static str {
        "queue-bounds"
    }

    fn on_probe(&mut self, probe: &Probe<'_>) -> Result<(), String> {
        QueueBounds::check(probe)
    }

    fn on_end(&mut self, probe: &Probe<'_>) -> Result<(), String> {
        QueueBounds::check(probe)
    }
}

/// No admitted client starves: by the end of the settle window every remote
/// client — steady cohort and flash crowd alike, across any composition of
/// deferrals, rejections, and server crash/restarts — is admitted at the
/// cloud and has received fan-out. A client wedged in join retry or
/// admitted-but-never-served is exactly the overload failure mode this
/// catches.
#[derive(Debug, Default)]
pub struct AdmittedLiveness;

impl Oracle for AdmittedLiveness {
    fn name(&self) -> &'static str {
        "admitted-liveness"
    }

    fn on_end(&mut self, probe: &Probe<'_>) -> Result<(), String> {
        let cloud = probe
            .session
            .sim()
            .node_as::<CloudServerNode>(probe.topology.cloud)
            .ok_or("cloud node is not a CloudServerNode")?;
        let expected = probe.topology.remote_clients.len();
        let admitted = cloud.admission().admitted_count();
        if admitted != expected {
            return Err(format!("end: cloud admitted {admitted} of {expected} remote clients"));
        }
        for &(avatar, node) in &probe.topology.remote_clients {
            let client = probe
                .session
                .sim()
                .node_as::<RemoteClientNode>(node)
                .ok_or_else(|| format!("node {node} is not a remote client"))?;
            if !client.is_admitted() {
                return Err(format!("end: client {avatar:?} never completed its join"));
            }
            if client.updates_received() == 0 {
                return Err(format!("end: client {avatar:?} was admitted but received no fan-out"));
            }
        }
        // The pooled audience converges too: by the end of the settle
        // window the cloud and every pool agree on the exact (churn-free)
        // admitted population, and no pool is starved of fan-out.
        if probe.topology.pooled_members > 0 {
            let pooled = cloud.pooled_active();
            if pooled != probe.topology.pooled_members {
                return Err(format!(
                    "end: cloud carries {pooled} pooled members of {}",
                    probe.topology.pooled_members
                ));
            }
            let mut active = 0u64;
            for &node in &probe.topology.pool_nodes {
                let pool = probe
                    .session
                    .sim()
                    .node_as::<ClientPoolNode>(node)
                    .ok_or_else(|| format!("node {node} is not a client pool"))?;
                active += pool.active();
                if pool.updates_received() == 0 {
                    return Err(format!("end: pool {node} was admitted but received no fan-out"));
                }
            }
            if active != probe.topology.pooled_members {
                return Err(format!(
                    "end: pools carry {active} active members of {}",
                    probe.topology.pooled_members
                ));
            }
        }
        Ok(())
    }
}

/// The fidelity ladder moves with discipline: every recorded transition is
/// exactly one rung, and two consecutive transitions are at least one
/// hysteresis window apart — except across a crash/restart, which resets
/// the shedder's clock.
pub struct ShedLadderDiscipline {
    hysteresis: SimDuration,
    /// Times of executed node crashes (a restart resets shedder state, so
    /// gap checks don't span them).
    crashes: Vec<SimTime>,
}

impl ShedLadderDiscipline {
    /// Creates the oracle with the scenario's hysteresis window.
    pub fn new(scn: &Scenario) -> Self {
        ShedLadderDiscipline { hysteresis: scn.overload().shed.hysteresis, crashes: Vec::new() }
    }

    fn check_transitions(&self, owner: &str, transitions: &[ShedTransition]) -> Result<(), String> {
        for t in transitions {
            let diff = i16::from(t.to.rung()) - i16::from(t.from.rung());
            if diff.abs() != 1 {
                return Err(format!(
                    "{owner}: ladder jumped {:?} -> {:?} in one transition",
                    t.from, t.to
                ));
            }
        }
        for pair in transitions.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let crossed_crash = self.crashes.iter().any(|&c| c > a.at && c <= b.at);
            if crossed_crash {
                continue;
            }
            let gap = b.at.duration_since(a.at);
            if gap < self.hysteresis {
                return Err(format!(
                    "{owner}: ladder moved twice within one hysteresis window \
                     ({} ms apart, window {} ms)",
                    gap.as_nanos() / 1_000_000,
                    self.hysteresis.as_nanos() / 1_000_000
                ));
            }
        }
        Ok(())
    }
}

impl Oracle for ShedLadderDiscipline {
    fn name(&self) -> &'static str {
        "shed-ladder-discipline"
    }

    fn on_sim_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        if let SimEvent::Fault { action: FaultAction::CrashNode { .. } } = event {
            self.crashes.push(view.time());
        }
        Ok(())
    }

    fn on_end(&mut self, probe: &Probe<'_>) -> Result<(), String> {
        let cloud = probe
            .session
            .sim()
            .node_as::<CloudServerNode>(probe.topology.cloud)
            .ok_or("cloud node is not a CloudServerNode")?;
        let cloud_transitions: Vec<ShedTransition> =
            cloud.shedder().transitions().copied().collect();
        self.check_transitions("cloud", &cloud_transitions)?;
        for &edge_id in &probe.topology.edges {
            let edge = probe
                .session
                .sim()
                .node_as::<EdgeServerNode>(edge_id)
                .ok_or_else(|| format!("node {edge_id} is not an edge server"))?;
            let transitions: Vec<ShedTransition> = edge.shedder().transitions().copied().collect();
            self.check_transitions(&format!("edge {edge_id}"), &transitions)?;
        }
        Ok(())
    }
}

/// Test instrument: trips on any executed fault action with the given code
/// (see [`FaultAction::code`]). Used to prove the explorer catches a broken
/// invariant and shrinks its schedule to a minimal plan.
#[derive(Debug)]
pub struct CanaryOracle {
    /// The fault code that triggers the canary.
    pub trip_code: u64,
}

impl Oracle for CanaryOracle {
    fn name(&self) -> &'static str {
        "canary"
    }

    fn on_sim_event(&mut self, _view: &SimView<'_>, event: &SimEvent<'_>) -> Result<(), String> {
        if let SimEvent::Fault { action } = event {
            if action.code() == self.trip_code {
                return Err(format!("canary tripped on fault code {}", self.trip_code));
            }
        }
        Ok(())
    }
}

/// The default oracle set: every invariant the blueprint's consistency claim
/// rests on.
pub fn standard_oracles(scn: &Scenario) -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(ClockMonotonicity::default()),
        Box::new(PacketConservation::default()),
        Box::new(PartitionIsolation::default()),
        Box::new(CrashedSilence),
        Box::new(StalenessBound::new(scn)),
        Box::new(ResyncConvergence::new(scn)),
        Box::new(QueueBounds),
        Box::new(AdmittedLiveness),
        Box::new(ShedLadderDiscipline::new(scn)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use metaclass_netsim::SimTime;

    /// The overload oracles must not be vacuous: the quick scenario's flash
    /// crowd really does engage admission control (deferrals happen), and
    /// still every client ends up admitted and served.
    #[test]
    fn quick_flash_crowd_engages_admission_and_everyone_is_served() {
        let scn = Scenario::quick(3);
        let (mut session, topo) = scn.build();
        session.run_for(scn.end().duration_since(SimTime::ZERO));
        let cloud =
            session.sim().node_as::<CloudServerNode>(topo.cloud).expect("cloud server node");
        let (_admitted, deferred, _rejected) = cloud.admission().totals();
        assert!(deferred > 0, "the flash crowd never pressured the admission gate");
        assert_eq!(cloud.admission().admitted_count(), topo.remote_clients.len());
        for &(avatar, node) in &topo.remote_clients {
            let client =
                session.sim().node_as::<RemoteClientNode>(node).expect("remote client node");
            assert!(client.is_admitted(), "client {avatar:?} not admitted");
            assert!(client.updates_received() > 0, "client {avatar:?} starved");
        }
    }
}
