//! simcheck — deterministic simulation checking for the blended-classroom
//! testbed.
//!
//! The blueprint's consistency story (heartbeat failure detection, graceful
//! degradation, post-heal resync) is only as strong as the fault schedules it
//! was tested under. This crate turns those properties into *invariant
//! oracles* checked continuously while a [`Scenario`] session runs, and
//! explores the schedule space with seeded random [fault
//! windows](plan::FaultWindow):
//!
//! - [`oracle`] — the [`Oracle`] trait, the registry the
//!   engine invokes at every boundary, and the violation record;
//! - [`oracles`] — the standard invariants: clock monotonicity, packet
//!   conservation, partition isolation, crashed-node silence, avatar
//!   staleness bounds, and post-heal resync convergence;
//! - [`plan`] — well-formed fault windows (paired start/end disturbances)
//!   that lower onto the netsim [`FaultPlan`](metaclass_netsim::FaultPlan);
//! - [`scenario`] — the checked two-campus session and its topology;
//! - [`mod@explore`] — the deterministic runner, the seeded explorer, and the
//!   shrinking minimizer (greedy window removal, then duration halving);
//! - [`regress`] — replayable JSON regression cases;
//! - [`cli`] — the `bench simcheck` subcommand.
//!
//! Everything is a pure function of the seed: the same flags produce
//! byte-identical output on every rerun.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod explore;
pub mod oracle;
pub mod oracles;
pub mod plan;
pub mod regress;
pub mod scenario;

pub use cli::run_cli;
pub use explore::{
    explore, explore_with, mix, run_plan, shrink, ExploreConfig, ExploreOutcome, FoundViolation,
    RunOutcome,
};
pub use oracle::{observer_for, shared, Oracle, OracleRegistry, Probe, SharedRegistry, Violation};
pub use oracles::{standard_oracles, CanaryOracle};
pub use plan::{event_count, generate_windows, lower, FaultWindow, PlanSpace};
pub use regress::{RegressionCase, SCHEMA_VERSION};
pub use scenario::{Scenario, Topology};
