//! Fault-schedule windows: the explorer's unit of generation and shrinking.
//!
//! A [`FaultWindow`] is a *paired* disturbance — every start carries its end —
//! so any subset of windows is still a well-formed schedule. The explorer
//! generates random window lists from a [`PlanSpace`], lowers them to a
//! [`FaultPlan`] for the engine, and shrinks at window granularity (drop a
//! window, halve its duration) rather than raw-event granularity, which keeps
//! every shrink candidate semantically closed (no crash without restart, no
//! partition without heal).

use metaclass_netsim::{DetRng, FaultPlan, LossModel, NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Minimum window duration the shrinker will go down to.
const MIN_WINDOW: SimDuration = SimDuration::from_millis(10);

/// One self-contained disturbance over a time window.
///
/// Serializable so that shrunk failing schedules can be persisted as
/// replayable JSON regression cases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultWindow {
    /// Administrative link outage of the `a`–`b` connection.
    LinkFlap {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Loss-process override on the `a`–`b` connection.
    LossBurst {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Loss process in effect during the burst.
        loss: LossModel,
    },
    /// Extra propagation delay on the `a`–`b` connection.
    LatencySpike {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Added one-way delay.
        extra: SimDuration,
    },
    /// Network partition into the given groups, healed at `until`.
    Partition {
        /// Disjoint groups; the generator always covers every node so the
        /// partition-isolation oracle is sound (no relay path survives).
        groups: Vec<Vec<NodeId>>,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Node crash at `from`, restart at `until`.
    CrashRestart {
        /// The node to crash and restart.
        node: NodeId,
        /// Crash instant.
        from: SimTime,
        /// Restart instant.
        until: SimTime,
    },
}

impl FaultWindow {
    /// Window start time.
    pub fn from(&self) -> SimTime {
        match self {
            FaultWindow::LinkFlap { from, .. }
            | FaultWindow::LossBurst { from, .. }
            | FaultWindow::LatencySpike { from, .. }
            | FaultWindow::Partition { from, .. }
            | FaultWindow::CrashRestart { from, .. } => *from,
        }
    }

    /// Window end time.
    pub fn until(&self) -> SimTime {
        match self {
            FaultWindow::LinkFlap { until, .. }
            | FaultWindow::LossBurst { until, .. }
            | FaultWindow::LatencySpike { until, .. }
            | FaultWindow::Partition { until, .. }
            | FaultWindow::CrashRestart { until, .. } => *until,
        }
    }

    /// Short kind label for logs and file names.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultWindow::LinkFlap { .. } => "link_flap",
            FaultWindow::LossBurst { .. } => "loss_burst",
            FaultWindow::LatencySpike { .. } => "latency_spike",
            FaultWindow::Partition { .. } => "partition",
            FaultWindow::CrashRestart { .. } => "crash_restart",
        }
    }

    /// Number of [`FaultPlan`] events this window lowers to (always the
    /// start/end pair).
    pub fn event_count(&self) -> usize {
        2
    }

    /// Appends this window's events to `plan`.
    pub fn lower_into(&self, plan: FaultPlan) -> FaultPlan {
        match self {
            FaultWindow::LinkFlap { a, b, from, until } => plan.link_flap(*a, *b, *from, *until),
            FaultWindow::LossBurst { a, b, from, until, loss } => {
                plan.loss_burst(*a, *b, *from, *until, *loss)
            }
            FaultWindow::LatencySpike { a, b, from, until, extra } => {
                plan.latency_spike(*a, *b, *from, *until, *extra)
            }
            FaultWindow::Partition { groups, from, until } => {
                let refs: Vec<&[NodeId]> = groups.iter().map(|g| g.as_slice()).collect();
                plan.partition_window(&refs, *from, *until)
            }
            FaultWindow::CrashRestart { node, from, until } => {
                plan.crash(*node, *from, Some(*until))
            }
        }
    }

    /// A copy of this window with a new `[from, until)` span.
    fn with_span(&self, from: SimTime, until: SimTime) -> FaultWindow {
        let mut w = self.clone();
        match &mut w {
            FaultWindow::LinkFlap { from: f, until: u, .. }
            | FaultWindow::LossBurst { from: f, until: u, .. }
            | FaultWindow::LatencySpike { from: f, until: u, .. }
            | FaultWindow::Partition { from: f, until: u, .. }
            | FaultWindow::CrashRestart { from: f, until: u, .. } => {
                *f = from;
                *u = until;
            }
        }
        w
    }

    /// Smaller variants of this window for the shrinker, best-first: halve
    /// the duration (keeping the start) until the 10 ms window floor.
    pub fn shrink_candidates(&self) -> Vec<FaultWindow> {
        let from = self.from();
        let dur = self.until().duration_since(from);
        let mut out = Vec::new();
        let half = SimDuration::from_nanos(dur.as_nanos() / 2);
        if half >= MIN_WINDOW {
            out.push(self.with_span(from, from + half));
        }
        out
    }
}

/// Lowers a window list to an engine [`FaultPlan`].
pub fn lower(windows: &[FaultWindow]) -> FaultPlan {
    windows.iter().fold(FaultPlan::new(), |plan, w| w.lower_into(plan))
}

/// Total number of raw fault events a window list lowers to.
pub fn event_count(windows: &[FaultWindow]) -> usize {
    windows.iter().map(FaultWindow::event_count).sum()
}

/// The space of schedules the generator samples from: which connections can
/// fault, which nodes can crash, which full-coverage partition splits exist,
/// and the time range windows must fit in.
#[derive(Debug, Clone)]
pub struct PlanSpace {
    /// Faultable connections (both directions are affected).
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Nodes that may crash (always restarted within the window).
    pub crashable: Vec<NodeId>,
    /// Candidate partition splits; each must cover every node in the
    /// simulation so the partition-isolation oracle is sound.
    pub splits: Vec<Vec<Vec<NodeId>>>,
    /// No window starts before this (lets the session warm up).
    pub earliest: SimTime,
    /// Every window ends by this time.
    pub horizon: SimTime,
}

/// Generates a random window list: between 1 and `max_windows` windows with
/// kinds, targets, and spans drawn from `rng`. Deterministic in the RNG
/// state. Window times are nanosecond-granular draws, so they essentially
/// never coincide with protocol timer instants.
///
/// # Panics
///
/// Panics if the space has no pairs, `earliest >= horizon`, or
/// `max_windows == 0`.
pub fn generate_windows(
    space: &PlanSpace,
    rng: &mut DetRng,
    max_windows: usize,
) -> Vec<FaultWindow> {
    assert!(!space.pairs.is_empty(), "plan space needs at least one faultable pair");
    assert!(space.earliest < space.horizon, "empty time range");
    assert!(max_windows > 0, "max_windows must be at least 1");
    let count = rng.range_u64(1, max_windows as u64 + 1) as usize;
    let lo = space.earliest.as_nanos();
    let hi = space.horizon.as_nanos();
    let mut windows = Vec::with_capacity(count);
    for _ in 0..count {
        // Kinds: 0 flap, 1 loss, 2 latency, 3 partition, 4 crash. Partition
        // and crash kinds degrade to link faults if the space lacks them.
        let mut kind = rng.range_u64(0, 5);
        if kind == 3 && space.splits.is_empty() {
            kind = 0;
        }
        if kind == 4 && space.crashable.is_empty() {
            kind = 1;
        }
        let max_dur: u64 = match kind {
            0 => 800_000_000,   // flap: up to 800 ms down
            1 => 1_200_000_000, // loss burst: up to 1.2 s
            2 => 1_000_000_000, // latency spike: up to 1 s
            3 => 1_000_000_000, // partition: up to 1 s
            _ => 1_200_000_000, // crash: up to 1.2 s outage
        };
        let min_dur = MIN_WINDOW.as_nanos() * 5; // 50 ms
        let start = rng.range_u64(lo, hi - min_dur);
        let dur = rng.range_u64(min_dur, max_dur.min(hi - start).max(min_dur + 1));
        let from = SimTime::from_nanos(start);
        let until = SimTime::from_nanos((start + dur).min(hi));
        let window = match kind {
            0 => {
                let (a, b) = space.pairs[rng.index(space.pairs.len())];
                FaultWindow::LinkFlap { a, b, from, until }
            }
            1 => {
                let (a, b) = space.pairs[rng.index(space.pairs.len())];
                let p = rng.range_f64(0.3, 0.95);
                FaultWindow::LossBurst { a, b, from, until, loss: LossModel::Iid { p } }
            }
            2 => {
                let (a, b) = space.pairs[rng.index(space.pairs.len())];
                let extra = SimDuration::from_nanos(rng.range_u64(50_000_000, 400_000_000));
                FaultWindow::LatencySpike { a, b, from, until, extra }
            }
            3 => {
                let groups = space.splits[rng.index(space.splits.len())].clone();
                FaultWindow::Partition { groups, from, until }
            }
            _ => {
                let node = space.crashable[rng.index(space.crashable.len())];
                FaultWindow::CrashRestart { node, from, until }
            }
        };
        windows.push(window);
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn space() -> PlanSpace {
        PlanSpace {
            pairs: vec![(n(1), n(2)), (n(1), n(0))],
            crashable: vec![n(1), n(2)],
            splits: vec![vec![vec![n(0), n(1)], vec![n(2)]]],
            earliest: SimTime::from_millis(500),
            horizon: SimTime::from_secs(3),
        }
    }

    #[test]
    fn generation_is_deterministic_and_in_range() {
        let s = space();
        let gen = |seed| {
            let mut rng = DetRng::new(seed);
            generate_windows(&s, &mut rng, 4)
        };
        assert_eq!(gen(7), gen(7));
        for seed in 0..50 {
            for w in gen(seed) {
                assert!(w.from() >= s.earliest, "{w:?}");
                assert!(w.until() <= s.horizon, "{w:?}");
                assert!(w.until() > w.from(), "{w:?}");
            }
        }
    }

    #[test]
    fn lowering_produces_paired_events() {
        let s = space();
        let mut rng = DetRng::new(3);
        let windows = generate_windows(&s, &mut rng, 4);
        let plan = lower(&windows);
        assert_eq!(plan.events().len(), event_count(&windows));
        assert_eq!(plan.events().len(), windows.len() * 2);
    }

    #[test]
    fn shrink_candidates_halve_duration_down_to_the_floor() {
        let w = FaultWindow::LinkFlap {
            a: n(0),
            b: n(1),
            from: SimTime::from_millis(100),
            until: SimTime::from_millis(900),
        };
        let c = w.shrink_candidates();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].from(), SimTime::from_millis(100));
        assert_eq!(c[0].until(), SimTime::from_millis(500));
        let tiny = w.with_span(SimTime::from_millis(100), SimTime::from_millis(115));
        assert!(tiny.shrink_candidates().is_empty(), "below 2x floor, no candidates");
    }

    #[test]
    fn windows_round_trip_through_json() {
        let s = space();
        let mut rng = DetRng::new(11);
        let windows = generate_windows(&s, &mut rng, 4);
        let json = serde_json::to_string(&windows).unwrap();
        let back: Vec<FaultWindow> = serde_json::from_str(&json).unwrap();
        assert_eq!(windows, back);
    }
}
