//! The simcheck explorer is engine-invariant: the same seed and case count
//! produce the same exploration fingerprint (per-case fault windows, event
//! counts, and oracle outcomes) whether the sessions execute serially or on
//! the sharded engine. The observer replay at window barriers is what makes
//! this hold — oracles see the exact serial event stream.
//!
//! The engine is per-run state ([`ExploreConfig::engine`], the same path
//! `bench simcheck --engine sharded` takes), so the serial and sharded
//! explorations here are independent and could even run concurrently.

use metaclass_core::ScenarioSpec;
use metaclass_netsim::EngineConfig;
use metaclass_simcheck::explore::{explore, ExploreConfig};

#[test]
fn exploration_fingerprint_is_engine_invariant() {
    let run = |engine| {
        let out = explore(&ExploreConfig {
            seed: 7,
            cases: 15,
            quick: true,
            pooled: 0,
            engine,
            scenario: None,
        });
        (out.fingerprint_hex(), out.cases, out.violations.len())
    };
    let serial = run(EngineConfig::serial());
    let sharded = run(EngineConfig::sharded(4));
    assert_eq!(serial, sharded, "explorer outcomes diverged between engines");
    assert_eq!(serial.2, 0, "the standard scenario should be violation-free");
}

/// The pooled scenario holds the same bar: with a flyweight audience riding
/// on every case, the exploration stays violation-free (the oracle set now
/// also checks pool convergence) and its fingerprint stays byte-identical
/// across engines.
#[test]
fn pooled_exploration_is_engine_invariant_and_clean() {
    let run = |engine| {
        let out = explore(&ExploreConfig {
            seed: 11,
            cases: 8,
            quick: true,
            pooled: 12,
            engine,
            scenario: None,
        });
        (out.fingerprint_hex(), out.cases, out.violations.len())
    };
    let serial = run(EngineConfig::serial());
    let sharded = run(EngineConfig::sharded(4));
    assert_eq!(serial, sharded, "pooled explorer outcomes diverged between engines");
    assert_eq!(serial.2, 0, "the pooled scenario should be violation-free");
}

/// A workload spec (with its own scripted loss burst riding along as a
/// fixed window in every case) explores clean and engine-invariantly, the
/// same bar the classic deployment holds.
#[test]
fn spec_driven_exploration_is_engine_invariant_and_clean() {
    const SPEC: &str = r#"
name = "invariance_lab"
pattern = "Lab"
duration_ms = 2000
cloud_region = "EastAsia"

[[campuses]]
name = "CWB"
region = "EastAsia"
students = 1
presenter = true

[[campuses]]
name = "GZ"
region = "EastAsia"
students = 1
presenter = false

[[cohorts]]
region = "Europe"
learners = 2
access = "ResidentialAccess"

[[stress.faults]]
kind = "LossBurst"
campus = 1
at_ms = 1000
for_ms = 400
"#;
    let spec = ScenarioSpec::from_toml_str(SPEC).unwrap();
    let run = |engine| {
        let out = explore(&ExploreConfig {
            seed: 5,
            cases: 6,
            quick: true,
            pooled: 0,
            engine,
            scenario: Some(spec.clone()),
        });
        (out.fingerprint_hex(), out.cases, out.violations.len())
    };
    let serial = run(EngineConfig::serial());
    let sharded = run(EngineConfig::sharded(4));
    assert_eq!(serial, sharded, "spec-driven explorer outcomes diverged between engines");
    assert_eq!(serial.2, 0, "the spec scenario should be violation-free");
}
