//! The simcheck explorer is engine-invariant: the same seed and case count
//! produce the same exploration fingerprint (per-case fault windows, event
//! counts, and oracle outcomes) whether the sessions execute serially or on
//! the sharded engine. The observer replay at window barriers is what makes
//! this hold — oracles see the exact serial event stream.
//!
//! The engine is selected through the process-wide default (the same path
//! `bench simcheck --engine sharded` uses), so the whole comparison lives in
//! one test function.

use metaclass_netsim::{set_default_engine, EngineMode};
use metaclass_simcheck::explore::{explore, ExploreConfig};

#[test]
fn exploration_fingerprint_is_engine_invariant() {
    let run = |mode| {
        set_default_engine(mode);
        let out = explore(&ExploreConfig { seed: 7, cases: 15, quick: true });
        set_default_engine(EngineMode::Serial);
        (out.fingerprint_hex(), out.cases, out.violations.len())
    };
    let serial = run(EngineMode::Serial);
    let sharded = run(EngineMode::Sharded { shards: 4 });
    assert_eq!(serial, sharded, "explorer outcomes diverged between engines");
    assert_eq!(serial.2, 0, "the standard scenario should be violation-free");
}
