//! Engine observation hooks for invariant checking.
//!
//! A [`SimObserver`] installed via
//! [`Simulation::set_observer`](crate::Simulation::set_observer) is invoked
//! synchronously at every interesting engine boundary — sends, final
//! deliveries, drops, timer firings, and fault executions — with a read-only
//! [`SimView`] of engine state taken *after* the event was applied. The
//! `simcheck` crate builds its invariant oracles on these hooks; the engine
//! itself stays policy-free.
//!
//! Observation is strictly passive: an observer cannot mutate the simulation,
//! draws no randomness from it, and schedules nothing, so installing one
//! never changes event order, metrics, or trace fingerprints.

use crate::fault::FaultAction;
use crate::link::{DropReason, Link};
use crate::node::NodeId;
use crate::time::SimTime;

/// One engine-boundary event, as seen by a [`SimObserver`].
///
/// Borrowed payloads keep observation allocation-free on the hot path.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimEvent<'a> {
    /// A node emitted a message via `Context::send` (loopback included).
    Sent {
        /// Sending node.
        src: NodeId,
        /// Final destination.
        dst: NodeId,
        /// Wire size in bytes.
        size_bytes: u32,
    },
    /// A message was scheduled from outside the network via
    /// [`Simulation::inject`](crate::Simulation::inject).
    Injected {
        /// Nominal sender.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Wire size in bytes.
        size_bytes: u32,
    },
    /// A message reached its final destination and was handed to the node.
    Delivered {
        /// Original sender.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Wire size in bytes.
        size_bytes: u32,
        /// When the message was sent (or injected).
        sent_at: SimTime,
    },
    /// A message was dropped in transit (link loss, queue overflow, link or
    /// node down). Multi-hop messages report at most one drop.
    Dropped {
        /// Original sender.
        src: NodeId,
        /// Intended final destination.
        dst: NodeId,
        /// Wire size in bytes.
        size_bytes: u32,
        /// Why the message was dropped.
        reason: DropReason,
    },
    /// A message had no route toward its destination and was discarded.
    NoRoute {
        /// Original sender.
        src: NodeId,
        /// Intended final destination.
        dst: NodeId,
        /// Wire size in bytes.
        size_bytes: u32,
    },
    /// A live timer fired and the node's `on_timer` ran. Swallowed timers
    /// (cancelled, stale epoch, crashed node) are *not* reported.
    TimerFired {
        /// The node whose timer fired.
        node: NodeId,
        /// The caller-chosen timer tag.
        tag: u64,
    },
    /// A scripted fault action executed. The view reflects post-fault state.
    Fault {
        /// The action that just ran.
        action: &'a FaultAction,
    },
}

/// A read-only snapshot of engine state handed to observers.
pub struct SimView<'a> {
    pub(crate) time: SimTime,
    pub(crate) crashed: &'a [bool],
    pub(crate) links: &'a [Link],
    pub(crate) link_ends: &'a [(NodeId, NodeId)],
}

impl SimView<'_> {
    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.crashed.len()
    }

    /// Whether `node` is currently crashed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    /// Iterates all directed links as `(from, to, link)` in creation order.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId, &Link)> {
        self.link_ends.iter().zip(self.links.iter()).map(|(&(from, to), link)| (from, to, link))
    }

    /// The directed link `from → to`, if one exists. Linear scan — intended
    /// for assertions, not hot paths.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<&Link> {
        self.link_ends.iter().position(|&(f, t)| f == from && t == to).map(|i| &self.links[i])
    }
}

impl std::fmt::Debug for SimView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimView")
            .field("time", &self.time)
            .field("nodes", &self.crashed.len())
            .field("links", &self.links.len())
            .finish()
    }
}

/// Receives engine-boundary events from a [`Simulation`](crate::Simulation).
///
/// Implementations must be deterministic (no wall-clock, no ambient
/// randomness) or they forfeit the engine's replayability guarantee for any
/// state they accumulate. The engine calls observers synchronously on the
/// simulation thread; `Send` is required so simulations stay movable across
/// threads (e.g. in sweep workers).
pub trait SimObserver: Send {
    /// Called after each observable event with the post-event engine view.
    fn on_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>);
}

impl<F: FnMut(&SimView<'_>, &SimEvent<'_>) + Send> SimObserver for F {
    fn on_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) {
        self(view, event)
    }
}
