//! Event tracing for audits and determinism tests.

use serde::{Deserialize, Serialize};

use crate::link::DropReason;
use crate::node::NodeId;
use crate::time::SimTime;

/// What happened at a traced instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A message was offered to the network by its source.
    Sent,
    /// A message reached its final destination.
    Delivered,
    /// A message was dropped en route.
    Dropped(DropReason),
    /// No route existed from the forwarding node to the destination.
    NoRoute,
    /// A timer fired at a node.
    TimerFired {
        /// The timer's tag.
        tag: u64,
    },
    /// A scripted fault action was executed by the engine.
    Fault {
        /// Discriminant of the executed [`FaultAction`](crate::FaultAction).
        code: u64,
    },
    /// A sharded run found no feasible shard plan and fell back to the
    /// serial executor (src/dst are meaningless; size is zero).
    EngineFallback,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event occurred.
    pub at: SimTime,
    /// Event kind.
    pub kind: TraceKind,
    /// Message source (or the timer's node).
    pub src: NodeId,
    /// Message destination (or the timer's node).
    pub dst: NodeId,
    /// Message wire size in bytes (zero for timers).
    pub size_bytes: u32,
}

/// A bounded in-memory event trace.
///
/// Recording stops silently once `capacity` events have been stored; the
/// [`Trace::truncated`] flag reports whether that happened.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    truncated: bool,
}

impl Trace {
    /// Creates a trace storing at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace { events: Vec::new(), capacity, truncated: false }
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.truncated = true;
        }
    }

    /// The recorded events, in order of occurrence.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether events were discarded because capacity was reached.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// An order-sensitive 64-bit digest of the trace (FNV-1a over the fields),
    /// for cheap determinism assertions: two runs with the same seed must
    /// produce identical fingerprints.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for ev in &self.events {
            mix(ev.at.as_nanos());
            let kind_code: u64 = match ev.kind {
                TraceKind::Sent => 1,
                TraceKind::Delivered => 2,
                TraceKind::Dropped(DropReason::QueueFull) => 3,
                TraceKind::Dropped(DropReason::Loss) => 4,
                TraceKind::Dropped(DropReason::LinkDown) => 5,
                TraceKind::NoRoute => 6,
                TraceKind::TimerFired { tag } => 7 ^ (tag << 8),
                TraceKind::Dropped(DropReason::NodeDown) => 8,
                TraceKind::Fault { code } => 9 ^ (code << 8),
                TraceKind::EngineFallback => 10,
            };
            mix(kind_code);
            mix(ev.src.index() as u64);
            mix(ev.dst.index() as u64);
            mix(ev.size_bytes as u64);
        }
        h
    }

    /// The [`Trace::fingerprint`] rendered as a fixed-width lowercase hex
    /// string, the form used in machine-readable result files where a JSON
    /// number would lose precision past 2^53.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(nanos: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(nanos),
            kind,
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 10,
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = Trace::new(2);
        t.push(ev(1, TraceKind::Sent));
        t.push(ev(2, TraceKind::Delivered));
        t.push(ev(3, TraceKind::Sent));
        assert_eq!(t.len(), 2);
        assert!(t.truncated());
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Trace::new(10);
        a.push(ev(1, TraceKind::Sent));
        a.push(ev(2, TraceKind::Delivered));
        let mut b = Trace::new(10);
        b.push(ev(2, TraceKind::Delivered));
        b.push(ev(1, TraceKind::Sent));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_timer_tags() {
        let mut a = Trace::new(10);
        a.push(ev(1, TraceKind::TimerFired { tag: 1 }));
        let mut b = Trace::new(10);
        b.push(ev(1, TraceKind::TimerFired { tag: 2 }));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_fault_codes() {
        let mut a = Trace::new(10);
        a.push(ev(1, TraceKind::Fault { code: 1 }));
        let mut b = Trace::new(10);
        b.push(ev(1, TraceKind::Fault { code: 2 }));
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = Trace::new(10);
        c.push(ev(1, TraceKind::Dropped(DropReason::NodeDown)));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_hex_is_fixed_width_and_consistent() {
        let mut t = Trace::new(10);
        t.push(ev(1, TraceKind::Sent));
        let hex = t.fingerprint_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(hex, format!("{:016x}", t.fingerprint()));
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn identical_traces_match() {
        let mut a = Trace::new(10);
        let mut b = Trace::new(10);
        for t in [a.events.len() as u64, 5, 9] {
            a.push(ev(t, TraceKind::Sent));
            b.push(ev(t, TraceKind::Sent));
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
