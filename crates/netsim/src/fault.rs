//! Scripted fault injection.
//!
//! A [`FaultPlan`] is a deterministic, time-ordered script of
//! [`FaultAction`]s — link flaps, loss bursts, latency spikes, network
//! partitions, and node crash/restart cycles — that a
//! [`Simulation`](crate::Simulation) executes as ordinary events via
//! [`Simulation::apply_fault_plan`](crate::Simulation::apply_fault_plan).
//! Because the plan is data (not callbacks) and every stochastic generator is
//! seeded through [`DetRng`], a fault schedule is fully replayable: the same
//! seed and plan produce byte-identical traces and metrics across runs.

use serde::{Deserialize, Serialize};

use crate::link::LossModel;
use crate::node::NodeId;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// One scripted fault, applied at a scheduled instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Administratively takes both directions between `a` and `b` down.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Restores both directions between `a` and `b`.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Replaces the loss process on both directions between `a` and `b`.
    LossBurstStart {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The loss process in effect during the burst.
        loss: LossModel,
    },
    /// Restores the configured loss process between `a` and `b`.
    LossBurstEnd {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Adds extra propagation delay on both directions between `a` and `b`.
    LatencySpikeStart {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Delay added on top of the configured propagation delay.
        extra: SimDuration,
    },
    /// Removes the extra delay between `a` and `b`.
    LatencySpikeEnd {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Severs every link whose endpoints fall in different groups.
    Partition {
        /// Disjoint node groups; nodes absent from all groups are unaffected.
        groups: Vec<Vec<NodeId>>,
    },
    /// Heals all partition-severed links (admin-down links stay down).
    Heal,
    /// Crashes a node: its state is reset via
    /// [`Node::on_crash`](crate::Node::on_crash), pending timers are voided,
    /// and traffic addressed to it is blackholed until restart.
    CrashNode {
        /// The node to crash.
        node: NodeId,
    },
    /// Restarts a crashed node; `on_start` runs again to re-arm timers.
    RestartNode {
        /// The node to restart.
        node: NodeId,
    },
}

impl FaultAction {
    /// Stable discriminant used in traces and metrics.
    pub fn code(&self) -> u64 {
        match self {
            FaultAction::LinkDown { .. } => 1,
            FaultAction::LinkUp { .. } => 2,
            FaultAction::LossBurstStart { .. } => 3,
            FaultAction::LossBurstEnd { .. } => 4,
            FaultAction::LatencySpikeStart { .. } => 5,
            FaultAction::LatencySpikeEnd { .. } => 6,
            FaultAction::Partition { .. } => 7,
            FaultAction::Heal => 8,
            FaultAction::CrashNode { .. } => 9,
            FaultAction::RestartNode { .. } => 10,
        }
    }

    /// Metrics counter name bumped when this action executes.
    pub fn metric(&self) -> &'static str {
        match self {
            FaultAction::LinkDown { .. } => "fault.link_down",
            FaultAction::LinkUp { .. } => "fault.link_up",
            FaultAction::LossBurstStart { .. } => "fault.loss_burst_start",
            FaultAction::LossBurstEnd { .. } => "fault.loss_burst_end",
            FaultAction::LatencySpikeStart { .. } => "fault.latency_spike_start",
            FaultAction::LatencySpikeEnd { .. } => "fault.latency_spike_end",
            FaultAction::Partition { .. } => "fault.partition",
            FaultAction::Heal => "fault.heal",
            FaultAction::CrashNode { .. } => "fault.crash",
            FaultAction::RestartNode { .. } => "fault.restart",
        }
    }
}

/// A time-ordered fault script.
///
/// Build with the window helpers ([`FaultPlan::link_flap`],
/// [`FaultPlan::loss_burst`], [`FaultPlan::latency_spike`],
/// [`FaultPlan::partition_window`], [`FaultPlan::crash`]) or push raw
/// `(time, action)` pairs with [`FaultPlan::at`]. Events are sorted by
/// (time, insertion order) when the plan is installed, so build order never
/// affects execution order at distinct times.
///
/// # Examples
///
/// ```
/// use metaclass_netsim::{FaultPlan, NodeId, SimDuration, SimTime};
///
/// let a = NodeId::from_index(0);
/// let b = NodeId::from_index(1);
/// let plan = FaultPlan::new()
///     .link_flap(a, b, SimTime::from_secs(1), SimTime::from_secs(2))
///     .crash(b, SimTime::from_secs(3), Some(SimTime::from_secs(4)));
/// assert_eq!(plan.events().len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends `action` at absolute time `at`.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push((at, action));
        self
    }

    /// Takes the `a`–`b` connection down at `down_at` and back up at `up_at`.
    ///
    /// # Panics
    ///
    /// Panics if `up_at <= down_at`.
    pub fn link_flap(self, a: NodeId, b: NodeId, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(up_at > down_at, "flap must end after it starts");
        self.at(down_at, FaultAction::LinkDown { a, b }).at(up_at, FaultAction::LinkUp { a, b })
    }

    /// Overrides the `a`–`b` loss process with `loss` during `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn loss_burst(
        self,
        a: NodeId,
        b: NodeId,
        from: SimTime,
        until: SimTime,
        loss: LossModel,
    ) -> Self {
        assert!(until > from, "burst must end after it starts");
        self.at(from, FaultAction::LossBurstStart { a, b, loss })
            .at(until, FaultAction::LossBurstEnd { a, b })
    }

    /// Adds `extra` delay on the `a`–`b` connection during `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn latency_spike(
        self,
        a: NodeId,
        b: NodeId,
        from: SimTime,
        until: SimTime,
        extra: SimDuration,
    ) -> Self {
        assert!(until > from, "spike must end after it starts");
        self.at(from, FaultAction::LatencySpikeStart { a, b, extra })
            .at(until, FaultAction::LatencySpikeEnd { a, b })
    }

    /// Partitions the listed groups from each other during `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn partition_window(self, groups: &[&[NodeId]], from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "partition must end after it starts");
        let groups: Vec<Vec<NodeId>> = groups.iter().map(|g| g.to_vec()).collect();
        self.at(from, FaultAction::Partition { groups }).at(until, FaultAction::Heal)
    }

    /// Crashes `node` at `at`; if `restart_at` is given, restarts it then.
    ///
    /// # Panics
    ///
    /// Panics if `restart_at <= at`.
    pub fn crash(self, node: NodeId, at: SimTime, restart_at: Option<SimTime>) -> Self {
        let plan = self.at(at, FaultAction::CrashNode { node });
        match restart_at {
            Some(r) => {
                assert!(r > at, "restart must follow the crash");
                plan.at(r, FaultAction::RestartNode { node })
            }
            None => plan,
        }
    }

    /// Generates `count` random link flaps over `pairs` within
    /// `[0, horizon)`, each lasting between `min_down` and `max_down`.
    /// Fully determined by `seed`: the same arguments always produce the same
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or `max_down < min_down`.
    pub fn random_link_flaps(
        self,
        seed: u64,
        pairs: &[(NodeId, NodeId)],
        horizon: SimTime,
        count: usize,
        min_down: SimDuration,
        max_down: SimDuration,
    ) -> Self {
        assert!(!pairs.is_empty(), "need at least one candidate pair");
        assert!(max_down >= min_down, "max_down must be at least min_down");
        let mut rng = DetRng::new(seed);
        let mut plan = self;
        for _ in 0..count {
            let (a, b) = pairs[rng.index(pairs.len())];
            let down_ns = rng.range_u64(0, horizon.as_nanos().max(1));
            let dur_ns = if max_down == min_down {
                min_down.as_nanos()
            } else {
                rng.range_u64(min_down.as_nanos(), max_down.as_nanos())
            };
            let down_at = SimTime::from_nanos(down_ns);
            let up_at = down_at.saturating_add(SimDuration::from_nanos(dur_ns.max(1)));
            plan = plan.link_flap(a, b, down_at, up_at);
        }
        plan
    }

    /// The scripted `(time, action)` pairs, in insertion order.
    pub fn events(&self) -> &[(SimTime, FaultAction)] {
        &self.events
    }

    /// Consumes the plan, returning events sorted by (time, insertion order).
    pub fn into_sorted_events(self) -> Vec<(SimTime, FaultAction)> {
        let mut indexed: Vec<(usize, (SimTime, FaultAction))> =
            self.events.into_iter().enumerate().collect();
        indexed.sort_by_key(|(i, (at, _))| (*at, *i));
        indexed.into_iter().map(|(_, ev)| ev).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn builders_emit_paired_events() {
        let plan = FaultPlan::new()
            .link_flap(n(0), n(1), SimTime::from_millis(5), SimTime::from_millis(9))
            .loss_burst(
                n(1),
                n(2),
                SimTime::from_millis(1),
                SimTime::from_millis(2),
                LossModel::Iid { p: 0.5 },
            );
        assert_eq!(plan.events().len(), 4);
        let sorted = plan.into_sorted_events();
        assert_eq!(sorted[0].0, SimTime::from_millis(1));
        assert_eq!(sorted[3].0, SimTime::from_millis(9));
        assert!(matches!(sorted[0].1, FaultAction::LossBurstStart { .. }));
        assert!(matches!(sorted[3].1, FaultAction::LinkUp { .. }));
    }

    #[test]
    fn sorting_is_stable_for_equal_times() {
        let t = SimTime::from_millis(3);
        let plan = FaultPlan::new()
            .at(t, FaultAction::CrashNode { node: n(0) })
            .at(t, FaultAction::RestartNode { node: n(1) });
        let sorted = plan.into_sorted_events();
        assert!(matches!(sorted[0].1, FaultAction::CrashNode { .. }));
        assert!(matches!(sorted[1].1, FaultAction::RestartNode { .. }));
    }

    #[test]
    fn random_flaps_are_seed_replayable() {
        let pairs = [(n(0), n(1)), (n(1), n(2))];
        let make = |seed| {
            FaultPlan::new().random_link_flaps(
                seed,
                &pairs,
                SimTime::from_secs(10),
                8,
                SimDuration::from_millis(50),
                SimDuration::from_millis(500),
            )
        };
        assert_eq!(make(7), make(7));
        assert_ne!(make(7), make(8));
        assert_eq!(make(7).events().len(), 16);
    }

    #[test]
    fn codes_and_metrics_are_distinct() {
        let actions = [
            FaultAction::LinkDown { a: n(0), b: n(1) },
            FaultAction::LinkUp { a: n(0), b: n(1) },
            FaultAction::LossBurstStart { a: n(0), b: n(1), loss: LossModel::None },
            FaultAction::LossBurstEnd { a: n(0), b: n(1) },
            FaultAction::LatencySpikeStart { a: n(0), b: n(1), extra: SimDuration::ZERO },
            FaultAction::LatencySpikeEnd { a: n(0), b: n(1) },
            FaultAction::Partition { groups: vec![] },
            FaultAction::Heal,
            FaultAction::CrashNode { node: n(0) },
            FaultAction::RestartNode { node: n(0) },
        ];
        let mut codes: Vec<u64> = actions.iter().map(|a| a.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), actions.len());
        let mut metrics: Vec<&str> = actions.iter().map(|a| a.metric()).collect();
        metrics.sort_unstable();
        metrics.dedup();
        assert_eq!(metrics.len(), actions.len());
    }
}
