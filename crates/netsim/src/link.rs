//! Network link models.
//!
//! A [`Link`] is a directed channel between two nodes with propagation delay,
//! jitter, stochastic loss (i.i.d. or Gilbert–Elliott bursts), finite
//! bandwidth with serialization delay, and a bounded drop-tail queue. Links
//! are the only source of latency and loss in the simulator, which makes the
//! per-hop accounting of the blueprint's Figure 3 explicit and auditable.

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a directed link within a [`Simulation`](crate::Simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The raw index of this link.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Packet-loss process of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// No loss at all.
    None,
    /// Each packet is lost independently with probability `p`.
    Iid {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst-loss process.
    GilbertElliott {
        /// Probability of moving good → bad per packet.
        p_good_to_bad: f64,
        /// Probability of moving bad → good per packet.
        p_bad_to_good: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Long-run average loss probability of this process.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { p } => p,
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, loss_good, loss_bad } => {
                let denom = p_good_to_bad + p_bad_to_good;
                if denom == 0.0 {
                    loss_good
                } else {
                    let pi_bad = p_good_to_bad / denom;
                    (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
                }
            }
        }
    }
}

/// Static configuration of a directed link.
///
/// Construct with [`LinkConfig::new`] and the builder-style setters, or use a
/// preset from [`crate::topology::LinkClass`].
///
/// # Examples
///
/// ```
/// use metaclass_netsim::{LinkConfig, LossModel, SimDuration};
///
/// let wifi = LinkConfig::new(SimDuration::from_millis(2))
///     .with_jitter(SimDuration::from_micros(1500))
///     .with_loss(LossModel::Iid { p: 0.005 })
///     .with_bandwidth_bps(50_000_000);
/// assert_eq!(wifi.delay(), SimDuration::from_millis(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    delay: SimDuration,
    jitter_std: SimDuration,
    loss: LossModel,
    bandwidth_bps: Option<u64>,
    queue_capacity_bytes: Option<u64>,
    fifo: bool,
}

impl LinkConfig {
    /// A lossless, infinite-bandwidth link with fixed propagation `delay`.
    pub fn new(delay: SimDuration) -> Self {
        LinkConfig {
            delay,
            jitter_std: SimDuration::ZERO,
            loss: LossModel::None,
            bandwidth_bps: None,
            queue_capacity_bytes: None,
            fifo: true,
        }
    }

    /// Sets the jitter standard deviation (truncated-normal, non-negative).
    pub fn with_jitter(mut self, jitter_std: SimDuration) -> Self {
        self.jitter_std = jitter_std;
        self
    }

    /// Sets the loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Sets a finite bandwidth in bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bps = Some(bps);
        self
    }

    /// Bounds the transmit queue; packets arriving beyond `bytes` of backlog
    /// are dropped (drop-tail). Only meaningful with finite bandwidth.
    pub fn with_queue_capacity_bytes(mut self, bytes: u64) -> Self {
        self.queue_capacity_bytes = Some(bytes);
        self
    }

    /// Allows packet reordering from jitter (default links deliver FIFO).
    pub fn with_reordering_allowed(mut self) -> Self {
        self.fifo = false;
        self
    }

    /// Propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Jitter standard deviation.
    pub fn jitter_std(&self) -> SimDuration {
        self.jitter_std
    }

    /// Loss model.
    pub fn loss(&self) -> LossModel {
        self.loss
    }

    /// Bandwidth, if finite.
    pub fn bandwidth_bps(&self) -> Option<u64> {
        self.bandwidth_bps
    }

    /// Queue capacity, if bounded.
    pub fn queue_capacity_bytes(&self) -> Option<u64> {
        self.queue_capacity_bytes
    }

    /// Whether deliveries preserve send order.
    pub fn is_fifo(&self) -> bool {
        self.fifo
    }
}

/// Why a packet offered to a link was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The transmit queue was full (drop-tail).
    QueueFull,
    /// The packet was lost in flight (channel loss).
    Loss,
    /// The link was administratively down or severed by a partition.
    LinkDown,
    /// The destination (or forwarding) node was crashed.
    NodeDown,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropReason::QueueFull => write!(f, "queue full"),
            DropReason::Loss => write!(f, "channel loss"),
            DropReason::LinkDown => write!(f, "link down"),
            DropReason::NodeDown => write!(f, "node down"),
        }
    }
}

/// Cumulative per-link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets accepted and delivered.
    pub delivered: u64,
    /// Packets dropped for any reason.
    pub dropped: u64,
    /// Packets dropped due to a full queue.
    pub dropped_queue: u64,
    /// Packets dropped due to channel loss.
    pub dropped_loss: u64,
    /// Packets dropped because the link was down.
    pub dropped_down: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Availability transitions into the down state (admin or partition).
    pub flaps: u64,
    /// Cumulative time spent unavailable, up to the last state transition.
    pub time_down: SimDuration,
}

/// Runtime state of a directed link.
#[derive(Debug, Clone)]
pub struct Link {
    cfg: LinkConfig,
    /// Time at which the transmitter finishes its current backlog.
    busy_until: SimTime,
    /// Latest arrival scheduled so far, for FIFO enforcement.
    last_arrival: SimTime,
    /// Gilbert–Elliott channel state (`true` = bad).
    ge_bad: bool,
    up: bool,
    /// Severed by a network partition (orthogonal to admin `up`).
    partitioned: bool,
    /// When the link last became unavailable, if currently down.
    down_since: Option<SimTime>,
    /// Temporary loss process replacing the configured one (fault injection).
    loss_override: Option<LossModel>,
    /// Extra propagation delay added on top of the configured one.
    extra_delay: SimDuration,
    stats: LinkStats,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmit {
    /// Packet will arrive at the far end at the given time.
    Deliver {
        /// Arrival instant at the receiving node.
        at: SimTime,
    },
    /// Packet was dropped.
    Drop(DropReason),
}

impl Link {
    /// Creates a link in the up state.
    pub fn new(cfg: LinkConfig) -> Self {
        Link {
            cfg,
            busy_until: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            ge_bad: false,
            up: true,
            partitioned: false,
            down_since: None,
            loss_override: None,
            extra_delay: SimDuration::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// This link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Administratively brings the link up or down (failure injection).
    ///
    /// Prefer [`Link::set_up_at`], which also maintains flap and time-down
    /// accounting; this variant treats the change as happening at an unknown
    /// time and only tracks the transition count.
    pub fn set_up(&mut self, up: bool) {
        self.set_up_at(SimTime::ZERO, up);
    }

    /// Administratively brings the link up or down at time `now`, updating
    /// [`LinkStats::flaps`] and [`LinkStats::time_down`].
    pub fn set_up_at(&mut self, now: SimTime, up: bool) {
        let before = self.is_available();
        self.up = up;
        self.transition_availability(now, before);
    }

    /// Marks the link severed (or restored) by a network partition at `now`.
    /// Partition state is tracked separately from admin state so healing a
    /// partition never resurrects an administratively downed link.
    pub fn set_partitioned_at(&mut self, now: SimTime, partitioned: bool) {
        let before = self.is_available();
        self.partitioned = partitioned;
        self.transition_availability(now, before);
    }

    fn transition_availability(&mut self, now: SimTime, was_available: bool) {
        let avail = self.is_available();
        if was_available && !avail {
            self.stats.flaps += 1;
            self.down_since = Some(now);
        } else if !was_available && avail {
            if let Some(since) = self.down_since.take() {
                self.stats.time_down += now.duration_since(since);
            }
        }
    }

    /// Whether the link is administratively up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Whether the link is currently severed by a partition.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Whether the link can carry traffic (up and not partitioned).
    pub fn is_available(&self) -> bool {
        self.up && !self.partitioned
    }

    /// Replaces the loss process temporarily (`None` restores the configured
    /// model). Used by loss-burst fault windows.
    pub fn set_loss_override(&mut self, loss: Option<LossModel>) {
        self.loss_override = loss;
    }

    /// The loss process currently in effect.
    pub fn effective_loss(&self) -> LossModel {
        self.loss_override.unwrap_or(self.cfg.loss)
    }

    /// Adds extra propagation delay on top of the configured one (`ZERO`
    /// restores normal latency). Used by latency-spike fault windows.
    pub fn set_extra_delay(&mut self, extra: SimDuration) {
        self.extra_delay = extra;
    }

    /// The extra delay currently in effect.
    pub fn extra_delay(&self) -> SimDuration {
        self.extra_delay
    }

    /// Current transmit backlog in bytes at time `now`, given the configured
    /// bandwidth (zero for infinite-bandwidth links).
    pub fn backlog_bytes(&self, now: SimTime) -> u64 {
        match self.cfg.bandwidth_bps {
            None => 0,
            Some(bps) => {
                let backlog = self.busy_until.duration_since(now);
                ((backlog.as_nanos() as u128 * bps as u128) / (8 * 1_000_000_000)) as u64
            }
        }
    }

    /// Offers a packet of `size_bytes` to the link at time `now`.
    ///
    /// Updates queue occupancy and loss state, and returns either the arrival
    /// time at the far end or a drop reason. Lost packets still occupy the
    /// transmitter (they are sent, then corrupted).
    pub fn transmit(&mut self, now: SimTime, size_bytes: u32, rng: &mut DetRng) -> Transmit {
        if !self.is_available() {
            self.stats.dropped += 1;
            self.stats.dropped_down += 1;
            return Transmit::Drop(DropReason::LinkDown);
        }

        // Queue admission.
        if let (Some(cap), Some(_)) = (self.cfg.queue_capacity_bytes, self.cfg.bandwidth_bps) {
            if self.backlog_bytes(now) + size_bytes as u64 > cap {
                self.stats.dropped += 1;
                self.stats.dropped_queue += 1;
                return Transmit::Drop(DropReason::QueueFull);
            }
        }

        // Serialization.
        let start = self.busy_until.max(now);
        let ser = match self.cfg.bandwidth_bps {
            None => SimDuration::ZERO,
            Some(bps) => SimDuration::from_transmission(size_bytes as u64, bps),
        };
        self.busy_until = start + ser;

        // Channel loss (after transmission — lost packets consumed airtime).
        let lost = match self.effective_loss() {
            LossModel::None => false,
            LossModel::Iid { p } => rng.chance(p),
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, loss_good, loss_bad } => {
                if self.ge_bad {
                    if rng.chance(p_bad_to_good) {
                        self.ge_bad = false;
                    }
                } else if rng.chance(p_good_to_bad) {
                    self.ge_bad = true;
                }
                rng.chance(if self.ge_bad { loss_bad } else { loss_good })
            }
        };
        if lost {
            self.stats.dropped += 1;
            self.stats.dropped_loss += 1;
            return Transmit::Drop(DropReason::Loss);
        }

        // Propagation + jitter.
        let jitter = if self.cfg.jitter_std.is_zero() {
            SimDuration::ZERO
        } else {
            let std = self.cfg.jitter_std.as_nanos() as f64;
            SimDuration::from_nanos(rng.truncated_normal(0.0, std, 0.0, 4.0 * std) as u64)
        };
        let mut arrival = self.busy_until + self.cfg.delay + self.extra_delay + jitter;
        if self.cfg.fifo && arrival <= self.last_arrival {
            arrival = self.last_arrival + SimDuration::from_nanos(1);
        }
        self.last_arrival = arrival;
        self.stats.delivered += 1;
        self.stats.bytes_delivered += size_bytes as u64;
        Transmit::Deliver { at: arrival }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(1234)
    }

    #[test]
    fn ideal_link_is_pure_delay() {
        let mut link = Link::new(LinkConfig::new(SimDuration::from_millis(5)));
        let mut r = rng();
        match link.transmit(SimTime::from_millis(10), 100, &mut r) {
            Transmit::Deliver { at } => assert_eq!(at, SimTime::from_millis(15)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bandwidth_serializes_back_to_back_packets() {
        // 1 Mbps, 125-byte packets => 1 ms serialization each.
        let cfg = LinkConfig::new(SimDuration::ZERO).with_bandwidth_bps(1_000_000);
        let mut link = Link::new(cfg);
        let mut r = rng();
        let t0 = SimTime::ZERO;
        let a1 = match link.transmit(t0, 125, &mut r) {
            Transmit::Deliver { at } => at,
            other => panic!("unexpected {other:?}"),
        };
        let a2 = match link.transmit(t0, 125, &mut r) {
            Transmit::Deliver { at } => at,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(a1, SimTime::from_millis(1));
        assert_eq!(a2, SimTime::from_millis(2));
    }

    #[test]
    fn queue_capacity_drops_excess() {
        // 1 Mbps with a 250-byte queue: the third 125-byte packet overflows.
        let cfg = LinkConfig::new(SimDuration::ZERO)
            .with_bandwidth_bps(1_000_000)
            .with_queue_capacity_bytes(250);
        let mut link = Link::new(cfg);
        let mut r = rng();
        let t0 = SimTime::ZERO;
        assert!(matches!(link.transmit(t0, 125, &mut r), Transmit::Deliver { .. }));
        assert!(matches!(link.transmit(t0, 125, &mut r), Transmit::Deliver { .. }));
        assert_eq!(link.transmit(t0, 125, &mut r), Transmit::Drop(DropReason::QueueFull));
        assert_eq!(link.stats().dropped_queue, 1);
        // After the backlog drains, transmission succeeds again.
        assert!(matches!(
            link.transmit(SimTime::from_millis(2), 125, &mut r),
            Transmit::Deliver { .. }
        ));
    }

    #[test]
    fn iid_loss_rate_is_plausible() {
        let cfg =
            LinkConfig::new(SimDuration::from_micros(10)).with_loss(LossModel::Iid { p: 0.1 });
        let mut link = Link::new(cfg);
        let mut r = rng();
        let mut lost = 0;
        for i in 0..10_000u64 {
            if matches!(
                link.transmit(SimTime::from_micros(i), 100, &mut r),
                Transmit::Drop(DropReason::Loss)
            ) {
                lost += 1;
            }
        }
        assert!((800..1_200).contains(&lost), "lost {lost}");
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let cfg =
            LinkConfig::new(SimDuration::from_micros(10)).with_loss(LossModel::GilbertElliott {
                p_good_to_bad: 0.01,
                p_bad_to_good: 0.2,
                loss_good: 0.0,
                loss_bad: 0.8,
            });
        let mut link = Link::new(cfg);
        let mut r = rng();
        let mut losses = Vec::new();
        for i in 0..50_000u64 {
            losses.push(matches!(
                link.transmit(SimTime::from_micros(i), 100, &mut r),
                Transmit::Drop(DropReason::Loss)
            ));
        }
        let total: usize = losses.iter().filter(|&&l| l).count();
        // Mean loss should be near the stationary value.
        let expected = LossModel::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.2,
            loss_good: 0.0,
            loss_bad: 0.8,
        }
        .mean_loss();
        let observed = total as f64 / losses.len() as f64;
        assert!((observed - expected).abs() < 0.01, "observed {observed} expected {expected}");
        // Conditional loss-after-loss probability must exceed marginal (bursts).
        let mut pairs = 0;
        let mut after_loss = 0;
        for w in losses.windows(2) {
            if w[0] {
                pairs += 1;
                if w[1] {
                    after_loss += 1;
                }
            }
        }
        let conditional = after_loss as f64 / pairs as f64;
        assert!(conditional > 2.0 * observed, "conditional {conditional} marginal {observed}");
    }

    #[test]
    fn fifo_links_never_reorder() {
        let cfg =
            LinkConfig::new(SimDuration::from_millis(5)).with_jitter(SimDuration::from_millis(3));
        let mut link = Link::new(cfg);
        let mut r = rng();
        let mut prev = SimTime::ZERO;
        for i in 0..1_000u64 {
            if let Transmit::Deliver { at } =
                link.transmit(SimTime::from_micros(i * 10), 100, &mut r)
            {
                assert!(at > prev, "reordered at packet {i}");
                prev = at;
            }
        }
    }

    #[test]
    fn down_link_drops_everything() {
        let mut link = Link::new(LinkConfig::new(SimDuration::from_millis(1)));
        link.set_up(false);
        let mut r = rng();
        assert_eq!(link.transmit(SimTime::ZERO, 10, &mut r), Transmit::Drop(DropReason::LinkDown));
        link.set_up(true);
        assert!(matches!(link.transmit(SimTime::ZERO, 10, &mut r), Transmit::Deliver { .. }));
        assert_eq!(link.stats().dropped_down, 1);
    }

    #[test]
    fn flap_and_time_down_accounting() {
        let mut link = Link::new(LinkConfig::new(SimDuration::from_millis(1)));
        link.set_up_at(SimTime::from_millis(10), false);
        link.set_up_at(SimTime::from_millis(10), false); // idempotent, no extra flap
        link.set_up_at(SimTime::from_millis(40), true);
        link.set_up_at(SimTime::from_millis(100), false);
        link.set_up_at(SimTime::from_millis(150), true);
        assert_eq!(link.stats().flaps, 2);
        assert_eq!(link.stats().time_down, SimDuration::from_millis(80));
    }

    #[test]
    fn partition_is_orthogonal_to_admin_state() {
        let mut link = Link::new(LinkConfig::new(SimDuration::from_millis(1)));
        let mut r = rng();
        link.set_partitioned_at(SimTime::from_millis(5), true);
        assert!(!link.is_available());
        assert!(link.is_up());
        assert_eq!(
            link.transmit(SimTime::from_millis(6), 10, &mut r),
            Transmit::Drop(DropReason::LinkDown)
        );
        // Admin-down while partitioned; healing the partition must not
        // resurrect the link.
        link.set_up_at(SimTime::from_millis(7), false);
        link.set_partitioned_at(SimTime::from_millis(8), false);
        assert!(!link.is_available());
        link.set_up_at(SimTime::from_millis(9), true);
        assert!(link.is_available());
        assert_eq!(link.stats().flaps, 1, "one continuous outage");
        assert_eq!(link.stats().time_down, SimDuration::from_millis(4));
    }

    #[test]
    fn loss_override_replaces_and_restores() {
        let cfg = LinkConfig::new(SimDuration::from_micros(10));
        let mut link = Link::new(cfg);
        let mut r = rng();
        link.set_loss_override(Some(LossModel::Iid { p: 1.0 }));
        assert_eq!(link.transmit(SimTime::ZERO, 10, &mut r), Transmit::Drop(DropReason::Loss));
        link.set_loss_override(None);
        assert!(matches!(link.transmit(SimTime::ZERO, 10, &mut r), Transmit::Deliver { .. }));
    }

    #[test]
    fn extra_delay_stretches_latency() {
        let mut link = Link::new(LinkConfig::new(SimDuration::from_millis(5)));
        let mut r = rng();
        link.set_extra_delay(SimDuration::from_millis(20));
        match link.transmit(SimTime::from_millis(10), 100, &mut r) {
            Transmit::Deliver { at } => assert_eq!(at, SimTime::from_millis(35)),
            other => panic!("unexpected {other:?}"),
        }
        link.set_extra_delay(SimDuration::ZERO);
        match link.transmit(SimTime::from_millis(100), 100, &mut r) {
            Transmit::Deliver { at } => assert_eq!(at, SimTime::from_millis(105)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mean_loss_of_models() {
        assert_eq!(LossModel::None.mean_loss(), 0.0);
        assert_eq!(LossModel::Iid { p: 0.25 }.mean_loss(), 0.25);
        let ge = LossModel::GilbertElliott {
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 0.4,
        };
        assert!((ge.mean_loss() - 0.1).abs() < 1e-12);
    }
}
