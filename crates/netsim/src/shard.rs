//! Conservative shard-parallel executor.
//!
//! The node graph is partitioned into shards by
//! [`min_cut_partition`](crate::topology::min_cut_partition); each shard's
//! *lookahead* is the minimum static latency of any cross-shard link. Because
//! a message crossing a shard boundary cannot arrive earlier than `now +
//! lookahead`, every shard may safely execute all events in the window
//! `[t, t + lookahead)` without hearing from its peers — the classic
//! Chandy–Misra conservative argument, with the lookahead large enough that
//! no null messages are needed.
//!
//! Execution alternates between parallel windows and barriers:
//!
//! 1. the coordinator picks the next window start `t` (the global minimum
//!    pending event time) and a window end bounded by the lookahead, the next
//!    scripted fault, and the caller's deadline;
//! 2. each shard *lane* — a [`Core`] owning just that shard's nodes and
//!    links — runs its local events to the window end on a worker thread,
//!    diverting cross-shard sends into per-destination outboxes;
//! 3. at the barrier the coordinator drains outboxes into the destination
//!    lanes (every such delivery lands at or past the window end, so no lane
//!    ever sees its past change), merges buffered trace entries and observer
//!    events back into the global `(time, stamp)` total order, and replays
//!    them.
//!
//! Two optimizations preserve this schedule bit-for-bit while cutting its
//! cost. *Batched outbox exchange* moves each nonempty outbox across the
//! barrier as one buffer handoff per shard pair — buffers are pooled and
//! recycled — instead of pushing entries one by one. *Adaptive lookahead*
//! (on by default; see [`EngineConfig`](crate::EngineConfig)) detects
//! windows where exactly one lane has pending work before every other
//! lane's horizon: the busy lane then leaps past the classic window in a
//! single inline dispatch, bounded by the runner-up instant and self-clamped
//! at its first cross-shard send, eliding the barriers a classic run would
//! have synchronized at (counted in `engine.barriers_elided`).
//!
//! Scripted faults mutate global state (links, crash flags), so an instant
//! containing a fault is executed serially: the lanes are recomposed into the
//! full simulation, the instant is stepped through the ordinary serial path,
//! and the lanes are dealt out again.
//!
//! Byte-identity with the serial engine is structural rather than aspirational:
//! a lane *is* the serial [`Core`] with the slots it does not own left empty,
//! so both executors run the same dispatch/route/transmit code, draw from the
//! same per-node and per-link RNG streams, and mint the same causal stamps.
//! The total event order `(SimTime, stamp)` is executor-independent, and
//! within one lane events pop in exactly that order, so the barrier merge is
//! a k-way merge of pre-sorted streams.

use std::collections::VecDeque;
use std::sync::{mpsc, Arc};

use crate::link::{Link, LinkConfig};
use crate::node::NodeId;
use crate::observe::{SimEvent, SimView};
use crate::rng::DetRng;
use crate::sched::EventQueue;
use crate::sim::{Core, EngineMode, EventKind, Simulation, Stepped};
use crate::time::{SimDuration, SimTime};

/// An owned copy of a [`SimEvent`], buffered by a lane for in-order replay
/// at the window barrier. Fault and inject events never occur inside a
/// window (faults serialize the instant; injects happen between runs), so
/// only the five in-window variants are representable.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OwnedSimEvent {
    Sent { src: NodeId, dst: NodeId, size_bytes: u32 },
    Delivered { src: NodeId, dst: NodeId, size_bytes: u32, sent_at: SimTime },
    Dropped { src: NodeId, dst: NodeId, size_bytes: u32, reason: crate::link::DropReason },
    NoRoute { src: NodeId, dst: NodeId, size_bytes: u32 },
    TimerFired { node: NodeId, tag: u64 },
}

impl OwnedSimEvent {
    pub(crate) fn from_event(event: &SimEvent<'_>) -> Option<Self> {
        Some(match *event {
            SimEvent::Sent { src, dst, size_bytes } => OwnedSimEvent::Sent { src, dst, size_bytes },
            SimEvent::Delivered { src, dst, size_bytes, sent_at } => {
                OwnedSimEvent::Delivered { src, dst, size_bytes, sent_at }
            }
            SimEvent::Dropped { src, dst, size_bytes, reason } => {
                OwnedSimEvent::Dropped { src, dst, size_bytes, reason }
            }
            SimEvent::NoRoute { src, dst, size_bytes } => {
                OwnedSimEvent::NoRoute { src, dst, size_bytes }
            }
            SimEvent::TimerFired { node, tag } => OwnedSimEvent::TimerFired { node, tag },
            SimEvent::Injected { .. } | SimEvent::Fault { .. } => return None,
        })
    }

    fn as_event(&self) -> SimEvent<'static> {
        match *self {
            OwnedSimEvent::Sent { src, dst, size_bytes } => SimEvent::Sent { src, dst, size_bytes },
            OwnedSimEvent::Delivered { src, dst, size_bytes, sent_at } => {
                SimEvent::Delivered { src, dst, size_bytes, sent_at }
            }
            OwnedSimEvent::Dropped { src, dst, size_bytes, reason } => {
                SimEvent::Dropped { src, dst, size_bytes, reason }
            }
            OwnedSimEvent::NoRoute { src, dst, size_bytes } => {
                SimEvent::NoRoute { src, dst, size_bytes }
            }
            OwnedSimEvent::TimerFired { node, tag } => SimEvent::TimerFired { node, tag },
        }
    }
}

/// A shard plan: node → shard assignment plus the global lookahead.
#[derive(Clone)]
pub(crate) struct Plan {
    /// Shard index per node; all values `< shards`.
    shard_of: Arc<Vec<u32>>,
    /// Number of (populated) shards — also the worker-thread count.
    shards: usize,
    /// Minimum static delay of any cross-shard link, in ns. `u64::MAX`
    /// means no link crosses a boundary: windows are unbounded.
    lookahead_ns: u64,
}

/// Cached outcome of shard planning for one `(topology, shard count)`.
/// `plan: None` records that the topology is not profitably shardable, so
/// repeated runs do not re-derive the partition.
pub(crate) struct ShardCache {
    topo_version: u64,
    shards_requested: usize,
    /// `events_processed` when the plan was computed. A plan made before any
    /// event ran (`0`) was balanced on static estimates only; it is replanned
    /// once observed per-node rates exist (the "warm-up pass").
    planned_at_events: u64,
    plan: Option<Plan>,
}

/// Relative per-node event-rate weights for the partitioner. Observed counts
/// from earlier runs of this simulation win; otherwise caller hints (see
/// [`Simulation::set_rate_hint`]); otherwise node degree as a structural
/// proxy for fan-out load. Only ratios matter, and the choice never affects
/// results — just which shard executes a node.
fn rate_weights<M: 'static>(sim: &Simulation<M>) -> Vec<u64> {
    let n = sim.core.nodes.len();
    if sim.core.node_events.iter().any(|&c| c > 0) {
        return sim.core.node_events.iter().map(|&c| c + 1).collect();
    }
    (0..n).map(|i| sim.rate_hints[i].max(1 + sim.core.adjacency[i].len() as u64)).collect()
}

fn compute_plan<M: 'static>(sim: &Simulation<M>, shards: usize) -> Option<Plan> {
    let n = sim.core.nodes.len();
    if shards < 2 || n < 2 {
        return None;
    }
    let edges: Vec<(u32, u32, u64)> = sim
        .core
        .link_ends
        .iter()
        .zip(sim.core.static_delays.iter())
        .map(|(&(a, b), &d)| (a.0, b.0, d))
        .collect();
    let weights = rate_weights(sim);
    let part = crate::topology::min_cut_partition_weighted(n, &edges, shards, &weights);
    // A zero-latency cross-shard link would make windows empty; a single
    // populated shard would make them pointless. Both fall back to serial.
    if part.shards < 2 || part.lookahead_ns == 0 {
        return None;
    }
    Some(Plan {
        shard_of: Arc::new(part.shard_of),
        shards: part.shards,
        lookahead_ns: part.lookahead_ns,
    })
}

fn plan_for<M: 'static>(sim: &mut Simulation<M>, shards: usize) -> Option<Plan> {
    if let Some(cache) = &sim.shard_cache {
        let stale_estimates = cache.planned_at_events == 0 && sim.core.events_processed > 0;
        if cache.topo_version == sim.topo_version
            && cache.shards_requested == shards
            && !stale_estimates
        {
            return cache.plan.clone();
        }
    }
    let plan = compute_plan(sim, shards);
    sim.shard_cache = Some(ShardCache {
        topo_version: sim.topo_version,
        shards_requested: shards,
        planned_at_events: sim.core.events_processed,
        plan: plan.clone(),
    });
    plan
}

fn dummy_link() -> Link {
    Link::new(LinkConfig::new(SimDuration::ZERO))
}

/// Pending scripted faults, held by the coordinator in `(time, stamp)` order.
type FaultQueue = VecDeque<(SimTime, u128, usize)>;

/// Splits the simulation into per-shard lanes. Each lane is a full-width
/// [`Core`] (vectors indexed by global id) holding only the nodes, links,
/// and pending events its shard owns; everything else is an empty slot.
/// Fault events stay with the coordinator.
fn deal_out<M: 'static>(sim: &mut Simulation<M>, plan: &Plan) -> (Vec<Core<M>>, FaultQueue) {
    let k = plan.shards;
    let n = sim.core.nodes.len();
    let nl = sim.core.links.len();
    let trace_on = sim.core.trace.is_some();
    let observing = sim.core.observer.is_some();
    let mut lanes: Vec<Core<M>> = (0..k)
        .map(|i| {
            let mut lane: Core<M> = Core::new_serial();
            lane.time = sim.core.time;
            lane.cur_depth = sim.core.cur_depth;
            lane.cur_stamp = sim.core.cur_stamp;
            lane.nodes = (0..n).map(|_| None).collect();
            lane.rngs = vec![DetRng::new(0); n];
            lane.node_events = vec![0; n];
            lane.push_counters = sim.core.push_counters.clone();
            lane.timer_counters = sim.core.timer_counters.clone();
            lane.crashed = sim.core.crashed.clone();
            lane.epochs = sim.core.epochs.clone();
            lane.links = (0..nl).map(|_| dummy_link()).collect();
            lane.link_rngs = vec![DetRng::new(0); nl];
            lane.link_ends = Arc::clone(&sim.core.link_ends);
            lane.adjacency = Arc::clone(&sim.core.adjacency);
            lane.static_delays = Arc::clone(&sim.core.static_delays);
            lane.buffered = true;
            lane.trace_on = trace_on;
            lane.observing = observing;
            lane.shard_of = Some(Arc::clone(&plan.shard_of));
            lane.my_shard = i as u32;
            lane.outboxes = (0..k).map(|_| Vec::new()).collect();
            lane.outbox_mins = vec![u64::MAX; k];
            lane
        })
        .collect();
    for idx in 0..n {
        let s = plan.shard_of[idx] as usize;
        lanes[s].nodes[idx] = sim.core.nodes[idx].take();
        lanes[s].rngs[idx] = std::mem::replace(&mut sim.core.rngs[idx], DetRng::new(0));
    }
    for li in 0..nl {
        let s = plan.shard_of[sim.core.link_ends[li].0.index()] as usize;
        lanes[s].links[li] = std::mem::replace(&mut sim.core.links[li], dummy_link());
        lanes[s].link_rngs[li] = std::mem::replace(&mut sim.core.link_rngs[li], DetRng::new(0));
    }
    for (src, table) in sim.core.route_cache.drain() {
        lanes[plan.shard_of[src as usize] as usize].route_cache.insert(src, table);
    }
    // Timer ids pack the owning node in the high half, so cancellations
    // partition cleanly to the lane whose timer they would swallow.
    let cancelled: Vec<u64> = sim.core.cancelled_timers.drain().collect();
    for id in cancelled {
        let owner = (id >> 32) as usize;
        lanes[plan.shard_of[owner] as usize].cancelled_timers.insert(id);
    }
    // The serial world's warm op arena seeds lane 0; the other lanes grow
    // their own on first use and hand the widest one back at reassembly.
    lanes[0].ops_arena = std::mem::take(&mut sim.core.ops_arena);
    let spares: Vec<_> = sim.core.spare_boxes.drain(..).collect();
    for (j, buf) in spares.into_iter().enumerate() {
        lanes[j % k].spare_boxes.push(buf);
    }
    let mut faults = FaultQueue::new();
    let mut old = std::mem::take(&mut sim.core.queue);
    while let Some((at, stamp, kind)) = old.pop() {
        let shard = match kind {
            EventKind::Fault { index } => {
                faults.push_back((at, stamp, index));
                continue;
            }
            EventKind::Deliver { hop, env } => {
                // Envelopes move between the global slab and the owning
                // lane's slab; the queue entry is re-indexed in place.
                let s = plan.shard_of[hop.index()] as usize;
                let env = lanes[s].env_slab.insert(sim.core.env_slab.take(env));
                lanes[s].queue.push(at, stamp, EventKind::Deliver { hop, env });
                continue;
            }
            EventKind::Timer { node, .. } => plan.shard_of[node.index()],
        };
        lanes[shard as usize].queue.push(at, stamp, kind);
    }
    (lanes, faults)
}

/// Inverse of [`deal_out`]: folds the lanes back into `sim.core`, restoring
/// the single serial world (nodes, links, pending events, metrics, and the
/// global clock — the latest `(time, stamp)` any lane reached).
fn reassemble<M: 'static>(sim: &mut Simulation<M>, lanes: Vec<Core<M>>, faults: FaultQueue) {
    let mut best = (sim.core.time, sim.core.cur_stamp, sim.core.cur_depth);
    for lane in &lanes {
        if (lane.time, lane.cur_stamp) > (best.0, best.1) {
            best = (lane.time, lane.cur_stamp, lane.cur_depth);
        }
    }
    (sim.core.time, sim.core.cur_stamp, sim.core.cur_depth) = (best.0, best.1, best.2);
    for mut lane in lanes {
        debug_assert!(lane.trace_keys.is_empty() && lane.obs_keys.is_empty());
        debug_assert!(lane.outboxes.iter().all(Vec::is_empty));
        for idx in 0..lane.nodes.len() {
            if let Some(node) = lane.nodes[idx].take() {
                sim.core.nodes[idx] = Some(node);
                sim.core.rngs[idx] = std::mem::replace(&mut lane.rngs[idx], DetRng::new(0));
                sim.core.push_counters[idx] = lane.push_counters[idx];
                sim.core.timer_counters[idx] = lane.timer_counters[idx];
            }
        }
        for li in 0..lane.links.len() {
            if lane.shard_owner(li) == lane.my_shard {
                sim.core.links[li] = std::mem::replace(&mut lane.links[li], dummy_link());
                sim.core.link_rngs[li] = std::mem::replace(&mut lane.link_rngs[li], DetRng::new(0));
            }
        }
        for (src, table) in lane.route_cache.drain() {
            sim.core.route_cache.insert(src, table);
        }
        sim.core.cancelled_timers.extend(lane.cancelled_timers.drain());
        // Keep the widest warm arena; fold memory-pressure high waters.
        if lane.ops_arena.capacity() > sim.core.ops_arena.capacity() {
            sim.core.ops_arena = std::mem::take(&mut lane.ops_arena);
        }
        if lane.ops_high_water > sim.core.ops_high_water {
            sim.core.ops_high_water = lane.ops_high_water;
        }
        sim.core.env_slab.raise_high_water(lane.env_slab.high_water());
        sim.core.metrics.merge(&lane.metrics);
        sim.core.events_processed += lane.events_processed;
        for (dst, src) in sim.core.node_events.iter_mut().zip(&lane.node_events) {
            *dst += *src;
        }
        sim.core.pool_hits += lane.pool_hits;
        sim.core.pool_misses += lane.pool_misses;
        sim.core.sent_count += lane.sent_count;
        sim.core.delivered_count += lane.delivered_count;
        if !lane.delivery_hist.is_empty() {
            sim.core.delivery_hist.merge(&lane.delivery_hist);
        }
        // Cross-shard deliveries exchanged at the last barrier but not yet
        // executed flow back into the global queue; their buffers are kept
        // for reuse.
        for mut buf in std::mem::take(&mut lane.inboxes) {
            for (at, stamp, hop, env) in buf.drain(..) {
                let env = sim.core.env_slab.insert(env);
                sim.core.queue.push(at, stamp, EventKind::Deliver { hop, env });
            }
            sim.core.spare_boxes.push(buf);
        }
        sim.core.spare_boxes.append(&mut lane.spare_boxes);
        while let Some((at, stamp, kind)) = lane.queue.pop() {
            let kind = match kind {
                EventKind::Deliver { hop, env } => {
                    let env = sim.core.env_slab.insert(lane.env_slab.take(env));
                    EventKind::Deliver { hop, env }
                }
                other => other,
            };
            sim.core.queue.push(at, stamp, kind);
        }
    }
    for (at, stamp, index) in faults {
        sim.core.queue.push(at, stamp, EventKind::Fault { index });
    }
}

impl<M> Core<M> {
    /// The shard owning link `li` under the current plan: a link is executed
    /// by the lane that owns its source endpoint.
    fn shard_owner(&self, li: usize) -> u32 {
        let map = self.shard_of.as_ref().expect("shard_owner outside lane mode");
        map[self.link_ends[li].0.index()]
    }
}

/// Runs one lane to the (exclusive) window end; `None` means unbounded.
/// Returns the number of events the lane consumed.
///
/// When `clamp_sends` is set (adaptive solo windows) the lane additionally
/// stops before executing any event at or past the arrival of its own
/// earliest cross-shard send: past that instant the silence of the other
/// shards is no longer provable, so the leap ends there and the send is
/// exchanged at an ordinary barrier.
fn lane_window<M: 'static>(core: &mut Core<M>, w_end: Option<SimTime>, clamp_sends: bool) -> u64 {
    core.drain_inboxes();
    let mut n = 0;
    loop {
        let mut end = w_end;
        if clamp_sends && core.outbox_min_ns != u64::MAX {
            end = min_opt(end, Some(SimTime::from_nanos(core.outbox_min_ns)));
        }
        match core.queue.peek_key() {
            Some((at, _)) if end.is_none_or(|e| at < e) => {}
            _ => break,
        }
        match core.step_inner(u64::MAX) {
            Stepped::Idle => break,
            Stepped::Events(k) => n += k,
            Stepped::Fault { .. } => unreachable!("faults never reach a shard lane"),
        }
    }
    n
}

/// Window end for a window starting at `w_start`: `w_start + lookahead`,
/// exclusive, computed without overflow. `None` when every representable
/// time fits inside the window.
fn window_end(w_start: SimTime, lookahead_ns: u64) -> Option<SimTime> {
    let end = w_start.as_nanos() as u128 + lookahead_ns as u128;
    (end <= u64::MAX as u128).then(|| SimTime::from_nanos(end as u64))
}

fn min_opt(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Merges the lanes' buffered trace entries and observer events back into
/// the global `(time, stamp)` order and replays them, then clears the
/// buffers. Called at every window barrier.
fn lane<M>(lanes: &mut [Option<Core<M>>], i: usize) -> &mut Core<M> {
    lanes[i].as_mut().expect("lane checked in at barrier")
}

fn replay_barrier<M: 'static>(sim: &mut Simulation<M>, lanes: &mut [Option<Core<M>>]) {
    let k = lanes.len();
    if sim.core.trace.is_some() {
        // The k-way merge touches only the dense key lanes; payloads are
        // fetched once per emitted event.
        let mut cursors = vec![0usize; k];
        loop {
            let mut min: Option<((SimTime, u128), usize)> = None;
            for (i, &cur) in cursors.iter().enumerate() {
                if let Some(&key) = lane(lanes, i).trace_keys.get(cur) {
                    if min.is_none_or(|(m, _)| key < m) {
                        min = Some((key, i));
                    }
                }
            }
            let Some((_, i)) = min else { break };
            let ev = lane(lanes, i).trace_items[cursors[i]];
            cursors[i] += 1;
            if let Some(trace) = &mut sim.core.trace {
                trace.push(ev);
            }
        }
    }
    if sim.core.observer.is_some() && (0..k).any(|i| !lane(lanes, i).obs_keys.is_empty()) {
        // Observers see link state at barrier granularity: within a window
        // links only evolve inside their owning lane, so the merged view
        // reflects the end-of-window state. Crash flags and the clock are
        // exact (faults serialize the instant that changes them).
        let mut links: Vec<Link> = (0..sim.core.links.len()).map(|_| dummy_link()).collect();
        for i in 0..k {
            let l = lane(lanes, i);
            for (li, slot) in links.iter_mut().enumerate() {
                if l.shard_owner(li) == l.my_shard {
                    *slot = l.links[li].clone();
                }
            }
        }
        let mut observer = sim.core.observer.take().expect("checked above");
        let mut cursors = vec![0usize; k];
        loop {
            let mut min: Option<((SimTime, u128), usize)> = None;
            for (i, &cur) in cursors.iter().enumerate() {
                if let Some(&key) = lane(lanes, i).obs_keys.get(cur) {
                    if min.is_none_or(|(m, _)| key < m) {
                        min = Some((key, i));
                    }
                }
            }
            let Some(((at, _), i)) = min else { break };
            let owned = lane(lanes, i).obs_items[cursors[i]];
            cursors[i] += 1;
            let view = SimView {
                time: at,
                crashed: &sim.core.crashed,
                links: &links,
                link_ends: &sim.core.link_ends,
            };
            observer.on_event(&view, &owned.as_event());
        }
        sim.core.observer = Some(observer);
    }
    for i in 0..k {
        let l = lane(lanes, i);
        l.trace_keys.clear();
        l.trace_items.clear();
        l.obs_keys.clear();
        l.obs_items.clear();
    }
}

/// Exchanges cross-shard deliveries produced this window in one buffer
/// handoff per shard pair: each nonempty outbox is moved wholesale into the
/// destination lane's inbox list (drained at that lane's next dispatch) and
/// replaced by a recycled spare, so no per-event push crosses threads at the
/// barrier. Every entry lands at or past the window end — guaranteed by the
/// lookahead, or by the send clamp in solo windows (`clamped`) — so no lane
/// ever sees its past change.
fn exchange_outboxes<M: 'static>(
    lanes: &mut [Option<Core<M>>],
    w_end: Option<SimTime>,
    clamped: bool,
) {
    let k = lanes.len();
    for i in 0..k {
        if lanes[i].as_mut().expect("lane checked in").outbox_min_ns == u64::MAX {
            continue; // nothing crossed a boundary from this lane
        }
        let mut boxes = {
            let src = lanes[i].as_mut().expect("lane checked in");
            src.outbox_min_ns = u64::MAX;
            std::mem::take(&mut src.outboxes)
        };
        for (dst, slot) in boxes.iter_mut().enumerate() {
            if slot.is_empty() {
                continue;
            }
            let (min_ns, buf) = {
                let src = lanes[i].as_mut().expect("lane checked in");
                let spare = src.spare_boxes.pop().unwrap_or_default();
                let min_ns = std::mem::replace(&mut src.outbox_mins[dst], u64::MAX);
                (min_ns, std::mem::replace(slot, spare))
            };
            debug_assert!(
                clamped || w_end.is_none_or(|e| min_ns >= e.as_nanos()),
                "cross-shard delivery inside its own window"
            );
            let target = lanes[dst].as_mut().expect("lane checked in");
            if min_ns < target.inbox_min_ns {
                target.inbox_min_ns = min_ns;
            }
            target.inboxes.push(buf);
        }
        lanes[i].as_mut().expect("lane checked in").outboxes = boxes;
    }
}

/// Attempts to run `sim` under the sharded executor until `until`
/// (inclusive) or the event queue drains, processing at most `limit` events
/// (enforced at window granularity). Returns `None` — run serially instead —
/// when the engine is serial or the topology cannot be sharded with a
/// positive lookahead.
pub(crate) fn try_run_sharded<M: Send + 'static>(
    sim: &mut Simulation<M>,
    until: SimTime,
    limit: u64,
) -> Option<u64> {
    let EngineMode::Sharded { shards } = sim.engine.mode else { return None };
    let Some(plan) = plan_for(sim, shards) else {
        sim.note_serial_fallback();
        return None;
    };
    let adaptive = sim.engine.adaptive_lookahead;
    let k = plan.shards;

    let (mut lanes, mut faults) = deal_out(sim, &plan);
    let mut total: u64 = 0;
    let mut windows: u64 = 0;
    let mut elided: u64 = 0;
    let mut shard_events = vec![0u64; k];
    let mut window_hist = crate::metrics::Histogram::new();

    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<(usize, Core<M>, u64)>();
        let mut work_txs = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = mpsc::channel::<(Core<M>, Option<SimTime>, bool)>();
            work_txs.push(tx);
            let done = done_tx.clone();
            scope.spawn(move || {
                let worker_rx = rx;
                let mut lane_index = None;
                while let Ok((mut core, w_end, clamp_sends)) = worker_rx.recv() {
                    let i = *lane_index.get_or_insert(core.my_shard as usize);
                    let n = lane_window(&mut core, w_end, clamp_sends);
                    if done.send((i, core, n)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);

        let mut slots: Vec<Option<Core<M>>> = lanes.drain(..).map(Some).collect();
        let mut busy: Vec<usize> = Vec::with_capacity(k);
        loop {
            if total >= limit {
                break;
            }
            // Next pending instant across all lanes (local queues plus
            // undrained inboxes) and scripted faults; the runner-up instant
            // detects solo windows for barrier elision. A lane tying the
            // minimum counts as the runner-up.
            let mut min1 = u64::MAX;
            let mut min2 = u64::MAX;
            for slot in slots.iter_mut() {
                let e = slot.as_mut().expect("lane checked in").earliest_pending_ns();
                if e < min1 {
                    min2 = min1;
                    min1 = e;
                } else if e < min2 {
                    min2 = e;
                }
            }
            let lane_min = (min1 != u64::MAX).then(|| SimTime::from_nanos(min1));
            let w_start = min_opt(lane_min, faults.front().map(|f| f.0));
            let Some(w_start) = w_start else { break };
            if w_start > until {
                break;
            }
            if faults.front().is_some_and(|f| f.0 == w_start) {
                // A fault mutates global state (links, crash flags): fold the
                // lanes together and run this whole instant serially, then
                // deal the world back out.
                let taken: Vec<Core<M>> =
                    slots.iter_mut().map(|s| s.take().expect("lane checked in")).collect();
                reassemble(sim, taken, std::mem::take(&mut faults));
                while sim.core.queue.peek_key().is_some_and(|(at, _)| at == w_start) {
                    total += sim.step_budget(u64::MAX);
                }
                let (new_lanes, new_faults) = deal_out(sim, &plan);
                slots = new_lanes.into_iter().map(Some).collect();
                faults = new_faults;
                continue;
            }
            let mut w_end = window_end(w_start, plan.lookahead_ns);
            // Adaptive lookahead: when exactly one lane has pending work
            // before every other lane's horizon, the other shards are
            // provably silent until the runner-up instant, so the busy lane
            // may leap past the classic window in one dispatch. The leap
            // self-clamps at the lane's first cross-shard send (see
            // `lane_window`); scripted faults and the caller's deadline
            // still bound it below.
            let mut clamp_sends = false;
            if adaptive {
                if min2 == u64::MAX {
                    if min1 != u64::MAX {
                        w_end = None;
                        clamp_sends = true;
                    }
                } else if w_end.is_some_and(|e| min2 > e.as_nanos()) {
                    w_end = Some(SimTime::from_nanos(min2));
                    clamp_sends = true;
                }
            }
            w_end = min_opt(w_end, faults.front().map(|f| f.0));
            if until < SimTime::MAX {
                w_end = min_opt(w_end, Some(SimTime::from_nanos(until.as_nanos() + 1)));
            }
            // Dispatch only lanes with work inside the window.
            busy.clear();
            for (i, slot) in slots.iter_mut().enumerate() {
                let e = slot.as_mut().expect("lane checked in").earliest_pending_ns();
                if e != u64::MAX && w_end.is_none_or(|end| e < end.as_nanos()) {
                    busy.push(i);
                }
            }
            debug_assert!(!clamp_sends || busy.len() == 1, "send clamp outside a solo window");
            let mut window_events = 0;
            if let [i] = busy[..] {
                // A lone busy lane runs inline on the coordinator thread: no
                // channel round-trip, no worker wakeup.
                let core = slots[i].as_mut().expect("lane checked in");
                let n = lane_window(core, w_end, clamp_sends);
                if clamp_sends && plan.lookahead_ns != u64::MAX {
                    // Barriers a classic run would have synchronized at
                    // while this lane covered the same span.
                    elided +=
                        core.time.as_nanos().saturating_sub(w_start.as_nanos()) / plan.lookahead_ns;
                }
                shard_events[i] += n;
                window_events += n;
            } else {
                for &i in &busy {
                    let core = slots[i].take().expect("lane checked in");
                    work_txs[i].send((core, w_end, clamp_sends)).expect("worker alive");
                }
                for _ in 0..busy.len() {
                    let (i, core, n) = done_rx.recv().expect("worker alive");
                    shard_events[i] += n;
                    window_events += n;
                    slots[i] = Some(core);
                }
            }
            total += window_events;
            windows += 1;
            window_hist.record(window_events);
            exchange_outboxes(&mut slots, w_end, clamp_sends);
            replay_barrier(sim, &mut slots);
        }
        let taken: Vec<Core<M>> =
            slots.iter_mut().map(|s| s.take().expect("lane checked in")).collect();
        reassemble(sim, taken, faults);
    });

    if windows > 0 {
        sim.core.metrics.add("engine.shard.windows", windows);
        sim.core.metrics.histogram("engine.shard.events_per_window").merge(&window_hist);
        if elided > 0 {
            sim.core.metrics.add("engine.barriers_elided", elided);
        }
        for (i, n) in shard_events.iter().enumerate() {
            if *n > 0 {
                sim.core.metrics.add(&format!("engine.shard.s{i}.events"), *n);
            }
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::link::{LinkConfig, LossModel};
    use crate::metrics::MetricsSnapshot;
    use crate::node::{Context, Node, Timer};
    use crate::observe::{SimEvent, SimObserver, SimView};
    use crate::sim::Simulation;
    use crate::time::{SimDuration, SimTime};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc as StdArc;

    /// A chatty node: pings a peer on a timer, echoes whatever it receives.
    struct Chatter {
        peer: NodeId,
        period: SimDuration,
        rounds: u32,
        fired: u32,
        received: u64,
    }

    impl Node<u64> for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            self.fired = 0;
            ctx.set_timer(self.period, 1);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            self.received += msg;
            if msg > 1 {
                ctx.send(from, msg - 1, 200);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _t: Timer) {
            self.fired += 1;
            let burst = ctx.rng().range_u64(1, 4);
            ctx.send(self.peer, burst, 400);
            if self.fired < self.rounds {
                ctx.set_timer(self.period, 1);
            }
        }
        fn on_crash(&mut self) {
            self.received = 0;
        }
    }

    /// Two 4-node campuses with fast intra-campus links, joined by one slow
    /// WAN pair — the blueprint's shape, shardable with a 40 ms lookahead.
    fn campus_sim(seed: u64) -> Simulation<u64> {
        let mut sim = Simulation::new(seed);
        sim.set_engine(EngineMode::Serial);
        let mut ids = Vec::new();
        for c in 0..2 {
            for i in 0..4 {
                // Cross-campus chatter goes through the gateway pair (0, 4).
                let peer_index = if i == 0 { (1 - c) * 4 } else { c * 4 };
                ids.push((c, i, peer_index));
            }
        }
        let nodes: Vec<NodeId> = ids
            .iter()
            .map(|&(c, i, peer)| {
                sim.add_node(
                    format!("c{c}n{i}"),
                    Chatter {
                        peer: NodeId::from_index(peer),
                        period: SimDuration::from_millis(3 + i as u64),
                        rounds: 12,
                        fired: 0,
                        received: 0,
                    },
                )
            })
            .collect();
        let lan = LinkConfig::new(SimDuration::from_millis(1))
            .with_jitter(SimDuration::from_micros(200))
            .with_loss(LossModel::Iid { p: 0.02 });
        for c in 0..2 {
            for i in 1..4 {
                sim.connect(nodes[c * 4], nodes[c * 4 + i], lan);
            }
        }
        let wan = LinkConfig::new(SimDuration::from_millis(40))
            .with_jitter(SimDuration::from_millis(2))
            .with_loss(LossModel::Iid { p: 0.05 });
        sim.connect(nodes[0], nodes[4], wan);
        sim
    }

    fn fingerprint_and_metrics(
        mut sim: Simulation<u64>,
        mode: EngineMode,
    ) -> (u64, MetricsSnapshot) {
        sim.set_engine(mode);
        sim.enable_trace(1 << 20);
        sim.run_until(SimTime::from_millis(500));
        let snap = sim.metrics().snapshot().without_prefix("engine.");
        (sim.trace().unwrap().fingerprint(), snap)
    }

    #[test]
    fn sharded_matches_serial_on_the_campus_topology() {
        for seed in [1, 7, 42] {
            let serial = fingerprint_and_metrics(campus_sim(seed), EngineMode::Serial);
            for shards in [2, 4] {
                let sharded =
                    fingerprint_and_metrics(campus_sim(seed), EngineMode::Sharded { shards });
                assert_eq!(serial.0, sharded.0, "trace diverged (seed {seed}, {shards} shards)");
                assert_eq!(serial.1, sharded.1, "metrics diverged (seed {seed}, {shards} shards)");
            }
        }
    }

    #[test]
    fn sharded_matches_serial_under_faults() {
        let gateway_a = NodeId::from_index(0);
        let gateway_b = NodeId::from_index(4);
        let plan = || {
            FaultPlan::new()
                .link_flap(
                    gateway_a,
                    gateway_b,
                    SimTime::from_millis(60),
                    SimTime::from_millis(120),
                )
                .crash(gateway_b, SimTime::from_millis(150), Some(SimTime::from_millis(230)))
                .latency_spike(
                    gateway_a,
                    gateway_b,
                    SimTime::from_millis(250),
                    SimTime::from_millis(320),
                    SimDuration::from_millis(15),
                )
        };
        let run = |mode: EngineMode| {
            let mut sim = campus_sim(9);
            sim.set_engine(mode);
            sim.enable_trace(1 << 20);
            sim.apply_fault_plan(plan());
            sim.run_until(SimTime::from_millis(400));
            let snap = sim.metrics().snapshot().without_prefix("engine.");
            (sim.trace().unwrap().fingerprint(), snap, sim.events_processed(), sim.time())
        };
        let serial = run(EngineMode::Serial);
        let sharded = run(EngineMode::Sharded { shards: 2 });
        assert_eq!(serial, sharded);
        assert!(serial.1.counters.contains_key("fault.injected"));
    }

    /// An observer that fingerprints the event stream it sees, including the
    /// view clock and crash flags, so replay order and view integrity are
    /// both checked.
    struct HashingObserver(StdArc<AtomicU64>);

    impl SimObserver for HashingObserver {
        fn on_event(&mut self, view: &SimView<'_>, event: &SimEvent<'_>) {
            let mut h = self.0.load(Ordering::Relaxed);
            let mut mix = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x100000001b3);
            };
            mix(view.time().as_nanos());
            let crashed =
                (0..view.node_count()).filter(|&i| view.is_crashed(NodeId::from_index(i))).count();
            mix(crashed as u64);
            let code = match event {
                SimEvent::Sent { src, dst, .. } => {
                    1 ^ (src.index() as u64) << 8 ^ (dst.index() as u64) << 16
                }
                SimEvent::Delivered { src, dst, sent_at, .. } => {
                    2 ^ (src.index() as u64) << 8
                        ^ (dst.index() as u64) << 16
                        ^ sent_at.as_nanos() << 24
                }
                SimEvent::Dropped { src, dst, .. } => {
                    3 ^ (src.index() as u64) << 8 ^ (dst.index() as u64) << 16
                }
                SimEvent::NoRoute { .. } => 4,
                SimEvent::TimerFired { node, tag } => 5 ^ (node.index() as u64) << 8 ^ tag << 16,
                SimEvent::Injected { .. } => 6,
                SimEvent::Fault { .. } => 7,
            };
            mix(code);
            self.0.store(h, Ordering::Relaxed);
        }
    }

    #[test]
    fn observer_stream_is_replayed_in_serial_order() {
        let run = |mode: EngineMode| {
            let mut sim = campus_sim(3);
            sim.set_engine(mode);
            let hash = StdArc::new(AtomicU64::new(0xcbf29ce484222325));
            sim.set_observer(HashingObserver(StdArc::clone(&hash)));
            let p = FaultPlan::new().crash(
                NodeId::from_index(5),
                SimTime::from_millis(80),
                Some(SimTime::from_millis(160)),
            );
            sim.apply_fault_plan(p);
            sim.run_until(SimTime::from_millis(300));
            hash.load(Ordering::Relaxed)
        };
        assert_eq!(run(EngineMode::Serial), run(EngineMode::Sharded { shards: 2 }));
        assert_eq!(run(EngineMode::Serial), run(EngineMode::Sharded { shards: 4 }));
    }

    #[test]
    fn unshardable_topologies_fall_back_to_serial() {
        // A single zero-latency star cannot be cut with positive lookahead.
        let mut sim: Simulation<u64> = Simulation::new(1);
        sim.set_engine(EngineMode::Sharded { shards: 4 });
        let hub = sim.add_node(
            "hub",
            Chatter {
                peer: NodeId::from_index(1),
                period: SimDuration::from_millis(1),
                rounds: 3,
                fired: 0,
                received: 0,
            },
        );
        let leaf = sim.add_node(
            "leaf",
            Chatter {
                peer: hub,
                period: SimDuration::from_millis(1),
                rounds: 3,
                fired: 0,
                received: 0,
            },
        );
        sim.connect(hub, leaf, LinkConfig::new(SimDuration::ZERO));
        sim.enable_trace(64);
        sim.run_until_idle();
        assert!(sim.metrics().counter_value("net.delivered") > 0);
        assert_eq!(sim.metrics().counter_value("engine.shard.windows"), 0);
        // The fallback is signalled, not silent: one counted fallback per
        // attempted sharded run, with a matching trace record.
        assert_eq!(sim.metrics().counter_value("engine.fallback_serial"), 1);
        let fallbacks = sim
            .trace()
            .unwrap()
            .events()
            .iter()
            .filter(|e| e.kind == crate::TraceKind::EngineFallback)
            .count();
        assert_eq!(fallbacks, 1);
    }

    #[test]
    fn feasible_plans_do_not_count_serial_fallbacks() {
        let mut sim = campus_sim(9);
        sim.set_engine(EngineMode::Sharded { shards: 2 });
        sim.run_until(SimTime::from_millis(200));
        assert!(sim.metrics().counter_value("engine.shard.windows") > 0);
        assert_eq!(sim.metrics().counter_value("engine.fallback_serial"), 0);
    }

    #[test]
    fn sharded_run_reports_window_metrics() {
        let mut sim = campus_sim(11);
        sim.set_engine(EngineMode::Sharded { shards: 2 });
        sim.run_until(SimTime::from_millis(200));
        assert!(sim.metrics().counter_value("engine.shard.windows") > 0);
        assert!(sim.metrics().counter_value("engine.shard.s0.events") > 0);
        assert!(sim.metrics().counter_value("engine.shard.s1.events") > 0);
        let hist = sim.metrics().snapshot().histograms;
        assert!(hist.contains_key("engine.shard.events_per_window"));
        assert!(sim.metrics().counter_value("engine.ops_pool.hit") > 0);
    }

    /// A node with no behavior at all: its campus generates zero traffic.
    struct Quiet;

    impl Node<u64> for Quiet {
        fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: NodeId, _msg: u64) {}
    }

    /// All chatter confined to campus 0; campus 1 is silent. The WAN link
    /// still makes the topology shardable, so one lane carries every event
    /// while the other stays idle — the barrier-elision sweet spot.
    fn sparse_sim(seed: u64) -> Simulation<u64> {
        let mut sim: Simulation<u64> = Simulation::new(seed);
        let mut nodes = Vec::new();
        for i in 0..4 {
            let peer_index = if i == 0 { 1 } else { 0 };
            nodes.push(sim.add_node(
                format!("c0n{i}"),
                Chatter {
                    peer: NodeId::from_index(peer_index),
                    period: SimDuration::from_millis(3 + i as u64),
                    rounds: 12,
                    fired: 0,
                    received: 0,
                },
            ));
        }
        for _ in 0..2 {
            nodes.push(sim.add_node("quiet", Quiet));
        }
        let lan = LinkConfig::new(SimDuration::from_millis(1))
            .with_jitter(SimDuration::from_micros(200))
            .with_loss(LossModel::Iid { p: 0.02 });
        for i in 1..4 {
            sim.connect(nodes[0], nodes[i], lan);
        }
        sim.connect(nodes[4], nodes[5], lan);
        let wan = LinkConfig::new(SimDuration::from_millis(40));
        sim.connect(nodes[0], nodes[4], wan);
        sim
    }

    #[test]
    fn adaptive_lookahead_elides_barriers_and_stays_byte_identical() {
        let run = |cfg: crate::sim::EngineConfig| {
            let mut sim = sparse_sim(13);
            sim.set_engine_config(cfg);
            sim.enable_trace(1 << 18);
            sim.run_until(SimTime::from_millis(500));
            let snap = sim.metrics().snapshot();
            (sim.trace().unwrap().fingerprint(), snap)
        };
        let serial = run(crate::sim::EngineConfig::serial());
        let on = run(crate::sim::EngineConfig::sharded(2));
        let off = run(crate::sim::EngineConfig::sharded(2).with_adaptive_lookahead(false));
        assert_eq!(serial.0, on.0, "adaptive sharded trace diverged from serial");
        assert_eq!(serial.0, off.0, "classic sharded trace diverged from serial");
        assert_eq!(
            on.1.without_prefix("engine."),
            off.1.without_prefix("engine."),
            "world metrics must not depend on barrier elision"
        );
        let elided = on.1.counters.get("engine.barriers_elided").copied().unwrap_or(0);
        assert!(elided > 0, "solo-lane traffic must elide barriers, got {elided}");
        assert!(
            !off.1.counters.contains_key("engine.barriers_elided"),
            "elision disabled must not count elided barriers"
        );
    }

    #[test]
    fn capped_runs_and_stepping_work_across_engines() {
        let mut sim = campus_sim(5);
        sim.set_engine(EngineMode::Sharded { shards: 2 });
        let n = sim.run_until_idle_capped(50);
        assert!(n >= 50, "cap is enforced at window granularity, but work must happen");
        // The world recomposes cleanly: serial stepping continues the run.
        sim.set_engine(EngineMode::Serial);
        assert!(sim.step().is_some());
        sim.run_until_idle();
    }
}
