//! Deterministic population processes for the flyweight client-pool layer.
//!
//! A [`PopulationTimeline`] is the pre-computed arrival/departure schedule of
//! a pool of statistically-identical remote clients: every join and leave is
//! materialized once, at build time, from a [`PopulationProfile`] and a
//! [`DetRng`] stream. The pool actor then consumes the timeline with a
//! cursor — O(events) work total, never O(members × ticks) — so a run that
//! models a million pooled clients schedules exactly one entity per region.
//!
//! Determinism story: the timeline depends only on `(seed, profile, members,
//! class length)`. It is generated before the simulation starts, so serial
//! and sharded engines consume byte-identical schedules; the pool actor
//! itself performs no randomness beyond what its own derived [`DetRng`]
//! streams provide.

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// How pooled clients arrive over the course of a class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Flash crowd: everyone tries to join around `at`, spread uniformly
    /// over `spread` (the post-COVID "class start" stampede). With
    /// `spread == 0` every member joins at exactly `at`.
    FlashCrowd {
        /// Nominal class-start instant.
        at: SimTime,
        /// Uniform window over which the crowd actually arrives.
        spread: SimDuration,
    },
    /// Memoryless trickle: exponential inter-arrival times with the given
    /// mean, starting at `from`. Models drop-in MOOC-style audiences.
    Poisson {
        /// First arrival is sampled after this instant.
        from: SimTime,
        /// Mean inter-arrival gap between consecutive joins.
        mean_gap: SimDuration,
    },
    /// Markov-modulated Poisson process: alternates between a busy and a
    /// quiet phase, each exponentially distributed, with distinct mean
    /// inter-arrival gaps. Captures bursty regional daybreak joins.
    Mmpp {
        /// First arrival is sampled after this instant.
        from: SimTime,
        /// Mean inter-arrival gap while the process is in the busy phase.
        busy_gap: SimDuration,
        /// Mean inter-arrival gap while the process is in the quiet phase.
        quiet_gap: SimDuration,
        /// Mean dwell time in either phase before switching.
        phase_mean: SimDuration,
    },
}

/// Diurnal churn riding on top of the arrival process: each member that has
/// joined leaves independently with probability `leave_chance`, at a time
/// sampled uniformly from `(join + min_stay, horizon)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Per-member probability of leaving before the class ends.
    pub leave_chance: f64,
    /// Minimum attendance before a churned member may leave.
    pub min_stay: SimDuration,
}

/// The full statistical description of one pool's population behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationProfile {
    /// Join schedule generator.
    pub arrivals: ArrivalProcess,
    /// Optional departures; `None` means everyone stays to the end.
    pub churn: Option<ChurnModel>,
}

impl PopulationProfile {
    /// A flash crowd with no churn: all members join at `at`, spread over
    /// `spread`. This is the classic class-start stampede and the profile
    /// the pool-vs-expanded equivalence tests use (`spread == 0` makes every
    /// pooled member indistinguishable from a cohort of individually
    /// simulated clients with identical `join_delay`).
    pub fn flash_crowd(at: SimTime, spread: SimDuration) -> Self {
        PopulationProfile { arrivals: ArrivalProcess::FlashCrowd { at, spread }, churn: None }
    }

    /// A Poisson trickle with no churn.
    pub fn poisson(from: SimTime, mean_gap: SimDuration) -> Self {
        PopulationProfile { arrivals: ArrivalProcess::Poisson { from, mean_gap }, churn: None }
    }

    /// Adds diurnal churn to the profile.
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = Some(churn);
        self
    }
}

/// One scheduled population change: `delta` members join (`+`) or leave
/// (`-`) at `at`. Events are sorted by time; same-time events are coalesced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopulationEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// Signed member-count change.
    pub delta: i64,
}

/// The materialized join/leave schedule of one pool.
///
/// Generated once per run from `(seed, profile, members, horizon)`;
/// consumed with [`PopulationTimeline::drain_until`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationTimeline {
    events: Vec<PopulationEvent>,
    cursor: usize,
    members: u64,
}

impl PopulationTimeline {
    /// Generates the timeline for `members` pooled clients over
    /// `[SimTime::ZERO, horizon]`.
    ///
    /// All randomness comes from `rng` (pass a derived stream); two calls
    /// with equal inputs yield equal timelines. Arrivals past `horizon` are
    /// clamped to `horizon` so the whole population is always accounted for.
    pub fn generate(
        profile: &PopulationProfile,
        members: u64,
        horizon: SimTime,
        rng: &mut DetRng,
    ) -> Self {
        let mut joins: Vec<SimTime> = Vec::with_capacity(members as usize);
        match profile.arrivals {
            ArrivalProcess::FlashCrowd { at, spread } => {
                let spread_ns = spread.as_nanos();
                for _ in 0..members {
                    let offset = if spread_ns == 0 { 0 } else { rng.next_u64() % spread_ns };
                    joins.push(at + SimDuration::from_nanos(offset));
                }
            }
            ArrivalProcess::Poisson { from, mean_gap } => {
                let rate = 1.0 / (mean_gap.as_nanos().max(1) as f64);
                let mut t = from;
                for _ in 0..members {
                    t += SimDuration::from_nanos(rng.exponential(rate) as u64);
                    joins.push(t);
                }
            }
            ArrivalProcess::Mmpp { from, busy_gap, quiet_gap, phase_mean } => {
                let rate_of = |busy: bool| {
                    let gap = if busy { busy_gap } else { quiet_gap };
                    1.0 / (gap.as_nanos().max(1) as f64)
                };
                let phase_rate = 1.0 / (phase_mean.as_nanos().max(1) as f64);
                let mut t = from;
                let mut busy = true;
                let mut phase_left = rng.exponential(phase_rate);
                for _ in 0..members {
                    let mut gap = rng.exponential(rate_of(busy));
                    // A phase switch mid-gap rescales the memoryless residual
                    // to the new phase's rate (hazard units are preserved).
                    while gap > phase_left {
                        t += SimDuration::from_nanos(phase_left as u64);
                        let residual = gap - phase_left;
                        gap = residual * rate_of(busy) / rate_of(!busy);
                        busy = !busy;
                        phase_left = rng.exponential(phase_rate);
                    }
                    phase_left -= gap;
                    t += SimDuration::from_nanos(gap as u64);
                    joins.push(t);
                }
            }
        }

        let mut events: Vec<PopulationEvent> = Vec::with_capacity(joins.len() * 2);
        for &join in &joins {
            let join = join.min(horizon);
            events.push(PopulationEvent { at: join, delta: 1 });
            if let Some(churn) = profile.churn {
                if rng.chance(churn.leave_chance) {
                    let earliest = (join + churn.min_stay).as_nanos();
                    let latest = horizon.as_nanos();
                    if earliest < latest {
                        let leave = earliest + rng.next_u64() % (latest - earliest);
                        events.push(PopulationEvent { at: SimTime::from_nanos(leave), delta: -1 });
                    }
                }
            }
        }
        events.sort_by_key(|e| e.at);
        // Coalesce same-instant events so the pool sees one net delta per
        // distinct time — keeps cursor work proportional to distinct events.
        let mut coalesced: Vec<PopulationEvent> = Vec::with_capacity(events.len());
        for e in events {
            match coalesced.last_mut() {
                Some(last) if last.at == e.at => last.delta += e.delta,
                _ => coalesced.push(e),
            }
        }
        coalesced.retain(|e| e.delta != 0);
        PopulationTimeline { events: coalesced, cursor: 0, members }
    }

    /// Total pool size this timeline was generated for.
    pub fn members(&self) -> u64 {
        self.members
    }

    /// All events, in time order (cursor-independent).
    pub fn events(&self) -> &[PopulationEvent] {
        &self.events
    }

    /// Net joins (`.0`) and leaves (`.1`) scheduled at or before `now` that
    /// have not been drained yet; advances the cursor past them.
    pub fn drain_until(&mut self, now: SimTime) -> (u64, u64) {
        let mut joins = 0i64;
        let mut leaves = 0i64;
        while let Some(e) = self.events.get(self.cursor) {
            if e.at > now {
                break;
            }
            if e.delta > 0 {
                joins += e.delta;
            } else {
                leaves -= e.delta;
            }
            self.cursor += 1;
        }
        (joins as u64, leaves as u64)
    }

    /// Time of the next undrained event, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Rewinds the cursor to the beginning (e.g. after a crash-restart).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Splits off `tracers` members as fully simulated clients: returns the
    /// residual pooled timeline (with one join removed at each tracer's
    /// instant) and the tracers' join instants.
    ///
    /// Tracers are sampled by stride across the join order (see
    /// [`PopulationTimeline::tracer_joins`]), so the residual pool plus the
    /// tracer clients together reproduce the original population exactly.
    /// Churn events stay with the pool — tracer clients attend to the end.
    pub fn split_tracers(&self, tracers: u64) -> (PopulationTimeline, Vec<SimTime>) {
        let tracer_joins = self.tracer_joins(tracers);
        let mut events = self.events.clone();
        for &at in &tracer_joins {
            if let Some(e) = events.iter_mut().find(|e| e.at == at && e.delta > 0) {
                e.delta -= 1;
            }
        }
        events.retain(|e| e.delta != 0);
        let residual = PopulationTimeline {
            events,
            cursor: 0,
            members: self.members.saturating_sub(tracer_joins.len() as u64),
        };
        (residual, tracer_joins)
    }

    /// The join instants of the `tracers` members promoted to fully
    /// simulated clients, sampled by stride across the join order so tracers
    /// cover the whole arrival curve (first, last, and evenly between).
    ///
    /// Returned sorted ascending. When `tracers >= members` every join
    /// instant is returned.
    pub fn tracer_joins(&self, tracers: u64) -> Vec<SimTime> {
        let mut joins: Vec<SimTime> = self
            .events
            .iter()
            .filter(|e| e.delta > 0)
            .flat_map(|e| std::iter::repeat_n(e.at, e.delta.max(0) as usize))
            .collect();
        joins.sort();
        if tracers >= joins.len() as u64 {
            return joins;
        }
        let n = joins.len() as u64;
        (0..tracers).map(|i| joins[(i * n / tracers) as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn flash_crowd_with_zero_spread_is_one_event() {
        let profile = PopulationProfile::flash_crowd(SimTime::from_millis(500), secs(0));
        let mut rng = DetRng::new(1);
        let tl = PopulationTimeline::generate(&profile, 1000, SimTime::from_secs(10), &mut rng);
        assert_eq!(tl.events().len(), 1);
        assert_eq!(tl.events()[0].delta, 1000);
        assert_eq!(tl.events()[0].at, SimTime::from_millis(500));
    }

    #[test]
    fn generation_is_deterministic() {
        let profile = PopulationProfile::poisson(SimTime::ZERO, SimDuration::from_millis(10))
            .with_churn(ChurnModel { leave_chance: 0.2, min_stay: secs(1) });
        let a = PopulationTimeline::generate(
            &profile,
            5000,
            SimTime::from_secs(60),
            &mut DetRng::new(42).derive(7),
        );
        let b = PopulationTimeline::generate(
            &profile,
            5000,
            SimTime::from_secs(60),
            &mut DetRng::new(42).derive(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn drain_accounts_for_every_member() {
        let profile = PopulationProfile::flash_crowd(SimTime::from_secs(1), secs(4));
        let mut rng = DetRng::new(9);
        let mut tl = PopulationTimeline::generate(&profile, 777, SimTime::from_secs(10), &mut rng);
        let mut joined = 0;
        let mut now = SimTime::ZERO;
        while let Some(next) = tl.next_event_at() {
            now = next;
            let (j, l) = tl.drain_until(now);
            joined += j;
            assert_eq!(l, 0, "no churn configured");
        }
        assert_eq!(joined, 777);
        assert!(now <= SimTime::from_secs(10));
    }

    #[test]
    fn churned_leaves_never_exceed_joins() {
        let profile = PopulationProfile::poisson(SimTime::ZERO, SimDuration::from_millis(5))
            .with_churn(ChurnModel { leave_chance: 0.5, min_stay: SimDuration::from_millis(50) });
        let mut rng = DetRng::new(3);
        let mut tl = PopulationTimeline::generate(&profile, 2000, SimTime::from_secs(30), &mut rng);
        let (joins, leaves) = tl.drain_until(SimTime::from_secs(30));
        assert_eq!(joins, 2000);
        assert!(leaves <= joins);
        assert!(leaves > 0, "with 50% churn over 2000 members some must leave");
    }

    #[test]
    fn mmpp_produces_monotone_arrivals_for_all_members() {
        let profile = PopulationProfile {
            arrivals: ArrivalProcess::Mmpp {
                from: SimTime::ZERO,
                busy_gap: SimDuration::from_micros(100),
                quiet_gap: SimDuration::from_millis(10),
                phase_mean: SimDuration::from_millis(50),
            },
            churn: None,
        };
        let mut rng = DetRng::new(11);
        let tl = PopulationTimeline::generate(&profile, 300, SimTime::from_secs(60), &mut rng);
        let total: i64 = tl.events().iter().map(|e| e.delta).sum();
        assert_eq!(total, 300);
        for w in tl.events().windows(2) {
            assert!(w[0].at < w[1].at, "events are strictly ordered after coalescing");
        }
    }

    #[test]
    fn tracer_joins_cover_the_arrival_curve() {
        let profile = PopulationProfile::flash_crowd(SimTime::from_secs(1), secs(8));
        let mut rng = DetRng::new(5);
        let tl = PopulationTimeline::generate(&profile, 640, SimTime::from_secs(20), &mut rng);
        let tracers = tl.tracer_joins(16);
        assert_eq!(tracers.len(), 16);
        let all = tl.tracer_joins(u64::MAX);
        assert_eq!(all.len(), 640);
        assert_eq!(tracers[0], all[0], "stride sampling starts at the first join");
        for w in tracers.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
