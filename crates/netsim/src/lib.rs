//! # metaclass-netsim
//!
//! A deterministic discrete-event network simulator: the substrate on which
//! the `metaclassroom` workspace reproduces the virtual-physical blended
//! classroom blueprint (Wang et al., ICDCS 2022).
//!
//! The blueprint's Figure 3 is a distributed system of headsets, room
//! sensors, edge servers, a cloud server, and remote clients joined by WiFi,
//! wired LAN, an inter-campus backbone, and the public Internet. This crate
//! models exactly those parts:
//!
//! - [`Simulation`] — the single-threaded, deterministic event engine;
//! - [`Node`] / [`Context`] — the actor interface for protocol code;
//! - [`Link`] / [`LinkConfig`] — delay, jitter, loss (i.i.d. and
//!   Gilbert–Elliott), bandwidth, and bounded queues;
//! - [`LinkClass`] / [`Region`] — calibrated presets for the blueprint's
//!   transport classes and a worldwide latency matrix;
//! - [`SimTime`] / [`SimDuration`] — integer-nanosecond time newtypes;
//! - [`DetRng`] — explicitly seeded randomness with derived sub-streams;
//! - [`MetricsRegistry`] / [`Histogram`] — deterministic measurement;
//! - [`Trace`] — bounded event traces with fingerprints for determinism
//!   tests;
//! - [`FaultPlan`] / [`FaultAction`] — seeded, replayable fault scripts
//!   (link flaps, loss bursts, latency spikes, partitions, node
//!   crash/restart) executed by the engine as ordinary events;
//! - [`PopulationProfile`] / [`PopulationTimeline`] — deterministic
//!   arrival/churn schedules (flash crowds, Poisson, MMPP) that drive the
//!   flyweight client pools of the million-user population layer.
//!
//! # Examples
//!
//! A two-node ping over a 5 ms link:
//!
//! ```
//! use metaclass_netsim::{Context, LinkConfig, Node, NodeId, SimDuration, Simulation};
//!
//! struct Hello(NodeId);
//! struct World(Option<NodeId>);
//!
//! impl Node<&'static str> for Hello {
//!     fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
//!         ctx.send(self.0, "hello", 16);
//!     }
//!     fn on_message(&mut self, _: &mut Context<'_, &'static str>, _: NodeId, _: &'static str) {}
//! }
//! impl Node<&'static str> for World {
//!     fn on_message(&mut self, _: &mut Context<'_, &'static str>, from: NodeId, _: &'static str) {
//!         self.0 = Some(from);
//!     }
//! }
//!
//! let mut sim = Simulation::new(1);
//! let w = sim.add_node("world", World(None));
//! let h = sim.add_node("hello", Hello(w));
//! sim.connect(h, w, LinkConfig::new(SimDuration::from_millis(5)));
//! sim.run_until_idle();
//! assert_eq!(sim.node_as::<World>(w).unwrap().0, Some(h));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod link;
mod metrics;
mod node;
mod observe;
mod population;
mod rng;
pub mod sched;
mod shard;
mod sim;
mod time;
mod topology;
mod trace;

pub use fault::{FaultAction, FaultPlan};
pub use link::{DropReason, Link, LinkConfig, LinkId, LinkStats, LossModel, Transmit};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, Summary};
pub use node::{Context, Envelope, Node, NodeId, Timer};
pub use observe::{SimEvent, SimObserver, SimView};
pub use population::{
    ArrivalProcess, ChurnModel, PopulationEvent, PopulationProfile, PopulationTimeline,
};
pub use rng::DetRng;
pub use sched::{BinaryHeapQueue, EventQueue, TimerWheel};
pub use sim::{
    parse_engine, EngineConfig, EngineMode, Simulation, SimulationBuilder, DEFAULT_SHARDS,
};
pub use time::{SimDuration, SimTime};
pub use topology::{min_cut_partition, min_cut_partition_weighted, LinkClass, Partition, Region};
pub use trace::{Trace, TraceEvent, TraceKind};
