//! Deterministic random number generation.
//!
//! Every stochastic component in the simulator draws from a [`DetRng`] that is
//! seeded explicitly, so that a simulation run is a pure function of its
//! configuration and seed. Independent sub-streams are derived with
//! [`DetRng::derive`] so that adding a consumer never perturbs the draws seen
//! by existing consumers.

/// A deterministic, explicitly-seeded random number generator.
///
/// The core is xoshiro256++ seeded through SplitMix64 — a self-contained,
/// platform-stable generator (no external dependency, identical streams on
/// every target) — plus the distribution samplers the simulator needs
/// (normal, truncated normal, exponential, Pareto, Zipf).
///
/// # Examples
///
/// ```
/// use metaclass_netsim::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
    spare_normal: Option<f64>,
}

/// SplitMix64 step, used to derive independent stream seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed into four non-degenerate state words, the standard
        // SplitMix64 initialization recommended for the xoshiro family:
        // word i is the i-th output of a SplitMix64 stream started at `seed`.
        let golden = 0x9E37_79B9_7F4A_7C15u64;
        let word = |i: u64| splitmix64(seed.wrapping_add(i.wrapping_mul(golden)));
        DetRng { seed, state: [word(0), word(1), word(2), word(3)], spare_normal: None }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for sub-stream `stream`.
    ///
    /// Derivation depends only on the original seed and `stream`, never on how
    /// many values have been drawn, so component RNGs stay decoupled.
    pub fn derive(&self, stream: u64) -> DetRng {
        DetRng::new(splitmix64(self.seed ^ splitmix64(stream)))
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        self.state = [s0, s1, s2, s3.rotate_left(45)];
        result
    }

    /// Uniform in `[0, 1)`: the top 53 bits scaled by 2⁻⁵³.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid range");
        if lo == hi {
            lo
        } else {
            lo + self.next_f64() * (hi - lo)
        }
    }

    /// Uniform integer in `[0, bound)` without modulo bias, via Lemire's
    /// multiply-then-compare reduction with rejection.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound == 1 {
            return 0;
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let product = u128::from(self.next_u64()) * u128::from(bound);
            if product as u64 >= threshold {
                return (product >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "invalid range");
        lo + self.below(hi - lo)
    }

    /// Uniform index in `[0, len)`, for choosing an element.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot choose from an empty collection");
        self.below(len as u64) as usize
    }

    /// Standard normal draw (Box–Muller with caching of the spare value).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller transform.
        let u1: f64 = loop {
            let u = self.next_f64();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Normal draw rejected-and-resampled into `[lo, hi]`.
    ///
    /// Falls back to clamping after 64 rejections so the call always
    /// terminates, even for intervals far in the tail.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn truncated_normal(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid truncation interval");
        for _ in 0..64 {
            let x = self.normal(mean, std_dev);
            if (lo..=hi).contains(&x) {
                return x;
            }
        }
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u: f64 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Pareto draw with minimum `scale` and tail index `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` or `shape` is not strictly positive.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(scale > 0.0 && shape > 0.0, "scale and shape must be positive");
        let u: f64 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        scale / u.powf(1.0 / shape)
    }

    /// Zipf draw over ranks `1..=n` with exponent `s`, by rejection sampling
    /// (Devroye's method); O(1) expected time, no table.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "support must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        if n == 1 {
            return 1;
        }
        if s == 0.0 {
            return 1 + self.range_u64(0, n);
        }
        // Rejection sampling against the integral envelope of x^-s.
        let nf = n as f64;
        loop {
            let u = self.next_f64();
            // Inverse of H(x) = (x^(1-s) - 1)/(1-s) for s != 1, ln(x) for s = 1.
            let x = if (s - 1.0).abs() < 1e-12 {
                nf.powf(u)
            } else {
                let h_n = (nf.powf(1.0 - s) - 1.0) / (1.0 - s);
                (1.0 + h_n * u * (1.0 - s)).powf(1.0 / (1.0 - s))
            };
            let k = x.floor().max(1.0).min(nf) as u64;
            // Accept with probability (k/x)^s.
            let accept = (k as f64 / x).powf(s);
            if self.next_f64() < accept {
                return k;
            }
        }
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_are_independent_of_consumption() {
        let a = DetRng::new(7);
        let mut a_used = DetRng::new(7);
        for _ in 0..10 {
            a_used.next_u64();
        }
        let mut d1 = a.derive(3);
        let mut d2 = a_used.derive(3);
        assert_eq!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn derived_streams_differ_between_ids() {
        let a = DetRng::new(7);
        assert_ne!(a.derive(1).next_u64(), a.derive(2).next_u64());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = DetRng::new(99);
        let n = 20_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal(5.0, 2.0);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = DetRng::new(1);
        for _ in 0..5_000 {
            let x = rng.truncated_normal(0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = DetRng::new(5);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = DetRng::new(11);
        let mut counts = [0u64; 10];
        for _ in 0..20_000 {
            let k = rng.zipf(10, 1.2);
            assert!((1..=10).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[9]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = DetRng::new(13);
        let mut counts = [0u64; 4];
        for _ in 0..8_000 {
            counts[(rng.zipf(4, 0.0) - 1) as usize] += 1;
        }
        for &c in &counts {
            assert!((1_600..2_400).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn pareto_never_below_scale() {
        let mut rng = DetRng::new(17);
        for _ in 0..5_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
