//! Event scheduling for the simulation engine.
//!
//! The engine needs a priority queue over `(SimTime, sequence)` keys with a
//! *total* order: ties in time are broken by a monotonically increasing
//! sequence number assigned at scheduling time, so a run is a pure function
//! of configuration and seed regardless of queue implementation.
//!
//! Two implementations share the [`EventQueue`] trait:
//!
//! - [`TimerWheel`] — the production scheduler. Near-future events land in a
//!   bucketed wheel (power-of-two slot count, occupancy bitmap, slots sorted
//!   lazily on drain); far-future events overflow to a fallback binary heap.
//!   Pops merge the two sorted streams by key, so the pop order is *exactly*
//!   the order a single global heap would produce.
//! - [`BinaryHeapQueue`] — the straightforward `BinaryHeap` baseline it
//!   replaced, kept as the reference implementation for property tests and
//!   benchmarks.
//!
//! Buffers are recycled: draining a slot moves its (sorted) contents into
//! the active batch and keeps both allocations, so steady-state scheduling
//! performs no allocation.
//!
//! The wheel's active batch is stored struct-of-arrays: `(time, seq)` keys
//! live in one dense deque and payloads in a parallel one, so the hot
//! read-mostly operations — `peek_key` (the sharded engine's
//! earliest-pending scan runs it once per lane per window), the binary
//! search for mid-drain inserts, and the pop-order merge against the
//! overflow heap — touch only the packed key lane and never pull payload
//! bytes into cache.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Log2 of the wheel slot width in nanoseconds (2^20 ns ≈ 1.05 ms).
const SLOT_SHIFT: u32 = 20;
/// Number of wheel slots; must be a power of two. The horizon is
/// `SLOTS << SLOT_SHIFT` ≈ 268 ms past the cursor.
const SLOTS: usize = 256;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Occupancy bitmap words (64 slots per word).
const BITMAP_WORDS: usize = SLOTS / 64;

/// A priority queue of events keyed by `(SimTime, seq)`.
///
/// `seq` must be unique and assigned in monotonically increasing order by
/// the caller; together with the guarantee that events are never scheduled
/// before the last popped key, this gives every implementation the same
/// total pop order.
pub trait EventQueue<T, S: Copy + Ord = u64> {
    /// Schedules `item` at `(at, seq)`.
    ///
    /// `at` must not precede the time of the most recently popped event.
    fn push(&mut self, at: SimTime, seq: S, item: T);

    /// Removes and returns the minimum-key event.
    fn pop(&mut self) -> Option<(SimTime, S, T)>;

    /// The key of the minimum event without removing it.
    ///
    /// Takes `&mut self` so implementations may advance internal cursors;
    /// the logical contents are unchanged.
    fn peek_key(&mut self) -> Option<(SimTime, S)>;

    /// Removes and returns the minimum-key event only if `pred` accepts it.
    fn pop_if(&mut self, pred: impl FnOnce(SimTime, S, &T) -> bool) -> Option<(SimTime, S, T)>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Entry<T, S> {
    at: SimTime,
    seq: S,
    item: T,
}

impl<T, S: Copy + Ord> Entry<T, S> {
    fn key(&self) -> (SimTime, S) {
        (self.at, self.seq)
    }
}

impl<T, S: Copy + Ord> PartialEq for Entry<T, S> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T, S: Copy + Ord> Eq for Entry<T, S> {}
impl<T, S: Copy + Ord> PartialOrd for Entry<T, S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T, S: Copy + Ord> Ord for Entry<T, S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Reference scheduler: a single global min-heap over `(SimTime, seq)`.
pub struct BinaryHeapQueue<T, S = u64> {
    heap: BinaryHeap<Reverse<Entry<T, S>>>,
}

impl<T, S: Copy + Ord> BinaryHeapQueue<T, S> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue { heap: BinaryHeap::new() }
    }
}

impl<T, S: Copy + Ord> Default for BinaryHeapQueue<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S: Copy + Ord> EventQueue<T, S> for BinaryHeapQueue<T, S> {
    fn push(&mut self, at: SimTime, seq: S, item: T) {
        self.heap.push(Reverse(Entry { at, seq, item }));
    }

    fn pop(&mut self) -> Option<(SimTime, S, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.seq, e.item))
    }

    fn peek_key(&mut self) -> Option<(SimTime, S)> {
        self.heap.peek().map(|Reverse(e)| e.key())
    }

    fn pop_if(&mut self, pred: impl FnOnce(SimTime, S, &T) -> bool) -> Option<(SimTime, S, T)> {
        let Reverse(e) = self.heap.peek()?;
        if pred(e.at, e.seq, &e.item) {
            self.pop()
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Production scheduler: a bucketed timer wheel with a far-future overflow
/// heap.
///
/// Events whose slot lies within `SLOTS` (256) buckets of the wheel cursor are
/// appended (unsorted, O(1)) to their slot; the cursor's own slot is the
/// sorted *active batch*, drained from the front. Everything past the
/// horizon goes to the overflow heap. Both substreams yield keys in
/// ascending order, so a two-way merge on pop reproduces global heap order
/// exactly.
pub struct TimerWheel<T, S = u64> {
    /// Absolute slot index of the cursor (`at.as_nanos() >> SLOT_SHIFT`).
    cursor: u64,
    /// Per-slot pending events, unsorted; indexed by `abs_slot & SLOT_MASK`.
    slots: Vec<Vec<Entry<T, S>>>,
    /// One bit per slot index: slot vector is non-empty.
    occupied: [u64; BITMAP_WORDS],
    /// Sorted keys of the cursor slot (struct-of-arrays lane); the front is
    /// the wheel minimum. `peek_key`, mid-drain binary searches, and the
    /// wheel-vs-overflow merge read only this dense lane.
    active_keys: VecDeque<(SimTime, S)>,
    /// Payloads parallel to `active_keys`, index for index.
    active_items: VecDeque<T>,
    /// Scratch buffer for sorting a slot before it enters the active lanes.
    sort_buf: Vec<Entry<T, S>>,
    /// Events scheduled past the wheel horizon.
    overflow: BinaryHeap<Reverse<Entry<T, S>>>,
    /// Events in `slots` plus the active lanes (excludes `overflow`).
    wheel_len: usize,
    /// Time of the most recently popped event, for contract checking.
    #[cfg(debug_assertions)]
    last_popped: Option<SimTime>,
}

impl<T, S: Copy + Ord> TimerWheel<T, S> {
    /// Creates an empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        TimerWheel {
            cursor: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            active_keys: VecDeque::new(),
            active_items: VecDeque::new(),
            sort_buf: Vec::new(),
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            #[cfg(debug_assertions)]
            last_popped: None,
        }
    }

    fn abs_slot(at: SimTime) -> u64 {
        at.as_nanos() >> SLOT_SHIFT
    }

    fn set_occupied(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
    }

    fn clear_occupied(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Index of the next occupied slot at or after the cursor, searching
    /// one full lap. `None` when every slot vector is empty.
    fn next_occupied(&self) -> Option<usize> {
        let start = (self.cursor & SLOT_MASK) as usize;
        let mut word_idx = start / 64;
        // First word: only bits at or above `start`.
        let mut word = self.occupied[word_idx] & (!0u64 << (start % 64));
        for _ in 0..=BITMAP_WORDS {
            if word != 0 {
                return Some(word_idx * 64 + word.trailing_zeros() as usize);
            }
            word_idx = (word_idx + 1) % BITMAP_WORDS;
            word = self.occupied[word_idx];
        }
        None
    }

    /// Advances the cursor until the active lanes are non-empty or the wheel
    /// is exhausted.
    fn ensure_front(&mut self) {
        while self.active_keys.is_empty() {
            if self.wheel_len == 0 {
                return;
            }
            let idx = self.next_occupied().expect("wheel_len > 0 but no occupied slot");
            // Re-anchor the cursor on the drained slot's absolute index. The
            // slot is within one lap of the cursor (inclusive: the cursor's
            // own slot collects events while the active batch is empty).
            let lap = (idx as u64).wrapping_sub(self.cursor) & SLOT_MASK;
            self.cursor += lap;
            self.sort_buf.append(&mut self.slots[idx]);
            self.clear_occupied(idx);
            self.sort_buf.sort_unstable_by_key(Entry::key);
            for e in self.sort_buf.drain(..) {
                self.active_keys.push_back((e.at, e.seq));
                self.active_items.push_back(e.item);
            }
        }
    }

    fn pop_active(&mut self) -> (SimTime, S, T) {
        let (at, seq) = self.active_keys.pop_front().expect("active checked non-empty");
        let item = self.active_items.pop_front().expect("active lanes in lockstep");
        self.wheel_len -= 1;
        #[cfg(debug_assertions)]
        {
            self.last_popped = Some(at);
        }
        (at, seq, item)
    }

    fn pop_overflow(&mut self) -> (SimTime, S, T) {
        let Reverse(e) = self.overflow.pop().expect("overflow checked non-empty");
        #[cfg(debug_assertions)]
        {
            self.last_popped = Some(e.at);
        }
        if self.wheel_len == 0 {
            // The wheel is empty: re-anchor the cursor so pushes near this
            // time land in slots rather than overflowing immediately.
            let slot = Self::abs_slot(e.at);
            if slot > self.cursor {
                self.cursor = slot;
            }
        }
        (e.at, e.seq, e.item)
    }

    /// Which substream holds the global minimum, and its key.
    fn front_source(&mut self) -> Option<(bool, SimTime, S)> {
        self.ensure_front();
        let wheel = self.active_keys.front().copied();
        let heap = self.overflow.peek().map(|Reverse(e)| e.key());
        match (wheel, heap) {
            (None, None) => None,
            (Some((at, seq)), None) => Some((true, at, seq)),
            (None, Some((at, seq))) => Some((false, at, seq)),
            (Some(w), Some(h)) => {
                if w <= h {
                    Some((true, w.0, w.1))
                } else {
                    Some((false, h.0, h.1))
                }
            }
        }
    }
}

impl<T, S: Copy + Ord> Default for TimerWheel<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S: Copy + Ord> EventQueue<T, S> for TimerWheel<T, S> {
    fn push(&mut self, at: SimTime, seq: S, item: T) {
        let slot = Self::abs_slot(at);
        // Time must never move backwards. Key inversions *at* the current
        // instant are legal (causal stamps of fault cascades and late injects
        // can sort below already-popped stamps); the sorted insert below
        // keeps the remaining pop order exact.
        #[cfg(debug_assertions)]
        if let Some(last) = self.last_popped {
            debug_assert!(at >= last, "scheduled before the last popped event");
        }
        if slot < self.cursor || (slot == self.cursor && !self.active_keys.is_empty()) {
            // Behind the cursor (it may have skipped ahead of `at` while
            // scanning for the next occupied slot — every event already in
            // a slot is strictly later than `at`, so a sorted insert keeps
            // global order), or into the cursor slot mid-drain. New events
            // carry the largest seq so far, so the common case appends or
            // front-inserts, both cheap on a `VecDeque`. The search touches
            // only the key lane.
            let pos =
                self.active_keys.binary_search(&(at, seq)).expect_err("duplicate (time, seq) key");
            self.active_keys.insert(pos, (at, seq));
            self.active_items.insert(pos, item);
            self.wheel_len += 1;
        } else if slot - self.cursor < SLOTS as u64 {
            // Cursor-slot pushes while the active batch is empty also land
            // here: unsorted O(1) append, sorted once on drain.
            let idx = (slot & SLOT_MASK) as usize;
            self.slots[idx].push(Entry { at, seq, item });
            self.set_occupied(idx);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(Entry { at, seq, item }));
        }
    }

    fn pop(&mut self) -> Option<(SimTime, S, T)> {
        let (from_wheel, _, _) = self.front_source()?;
        Some(if from_wheel { self.pop_active() } else { self.pop_overflow() })
    }

    fn peek_key(&mut self) -> Option<(SimTime, S)> {
        self.front_source().map(|(_, at, seq)| (at, seq))
    }

    fn pop_if(&mut self, pred: impl FnOnce(SimTime, S, &T) -> bool) -> Option<(SimTime, S, T)> {
        let (from_wheel, _, _) = self.front_source()?;
        let accept = if from_wheel {
            let &(at, seq) = self.active_keys.front().expect("front_source saw the wheel");
            let item = self.active_items.front().expect("active lanes in lockstep");
            pred(at, seq, item)
        } else {
            let Reverse(e) = self.overflow.peek().expect("front_source saw overflow");
            pred(e.at, e.seq, &e.item)
        };
        if !accept {
            return None;
        }
        Some(if from_wheel { self.pop_active() } else { self.pop_overflow() })
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(SimTime, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn wheel_matches_heap_on_mixed_horizons() {
        let mut wheel = TimerWheel::new();
        let mut heap = BinaryHeapQueue::new();
        let times = [
            0u64,
            1,
            999,
            1 << 20,
            (1 << 20) + 1,
            300_000_000,   // within the ~268 ms horizon? no: this overflows
            200_000_000,   // within horizon
            5_000_000_000, // seconds out
            5_000_000_000, // same-time tie, later seq
            200_000_000,   // duplicate time within horizon
        ];
        for (seq, &ns) in times.iter().enumerate() {
            wheel.push(SimTime::from_nanos(ns), seq as u64, seq as u32);
            heap.push(SimTime::from_nanos(ns), seq as u64, seq as u32);
        }
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(drain(&mut wheel), drain(&mut heap));
    }

    #[test]
    fn push_into_current_slot_during_drain_preserves_order() {
        let mut wheel = TimerWheel::new();
        let t = SimTime::from_nanos(100);
        wheel.push(t, 0, 0);
        wheel.push(t, 1, 1);
        assert_eq!(wheel.pop().unwrap(), (t, 0, 0));
        // Schedule at the current instant mid-drain (loopback pattern).
        wheel.push(t, 2, 2);
        assert_eq!(wheel.pop().unwrap(), (t, 1, 1));
        assert_eq!(wheel.pop().unwrap(), (t, 2, 2));
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn overflow_merges_with_wheel_after_cursor_advances() {
        let mut wheel = TimerWheel::new();
        let far = SimTime::from_secs(10);
        wheel.push(far, 0, 0);
        // Pop re-anchors the cursor near `far`; later pushes just after it
        // must land in the wheel and still come out in order.
        assert_eq!(wheel.pop().unwrap(), (far, 0, 0));
        let near = SimTime::from_nanos(far.as_nanos() + 5);
        wheel.push(near, 1, 1);
        assert_eq!(wheel.pop().unwrap(), (near, 1, 1));
    }

    #[test]
    fn pop_if_only_pops_matching_front() {
        let mut wheel = TimerWheel::new();
        wheel.push(SimTime::from_nanos(5), 0, 7);
        assert!(wheel.pop_if(|_, _, &v| v == 9).is_none());
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop_if(|_, _, &v| v == 7).unwrap(), (SimTime::from_nanos(5), 0, 7));
        assert!(wheel.is_empty());
    }

    #[test]
    fn peek_key_reports_global_min_across_substreams() {
        let mut wheel = TimerWheel::new();
        wheel.push(SimTime::from_secs(30), 0, 0); // overflow
        wheel.push(SimTime::from_nanos(10), 1, 1); // wheel
        assert_eq!(wheel.peek_key(), Some((SimTime::from_nanos(10), 1)));
        wheel.pop();
        assert_eq!(wheel.peek_key(), Some((SimTime::from_secs(30), 0)));
    }

    #[test]
    fn interleaved_pushes_and_pops_match_heap() {
        // A miniature deterministic workload: after each pop, schedule a few
        // follow-ups relative to the popped time, mirroring how the engine
        // uses the queue. Both implementations must agree event for event.
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let mut heap: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        let mut seq = 0u64;
        let push_both = |w: &mut TimerWheel<u32>, h: &mut BinaryHeapQueue<u32>, at, s: u64| {
            w.push(at, s, s as u32);
            h.push(at, s, s as u32);
        };
        for i in 0..8 {
            push_both(&mut wheel, &mut heap, SimTime::from_nanos(i * 61), seq);
            seq += 1;
        }
        let mut popped = 0u64;
        while let Some((at, s, v)) = wheel.pop() {
            assert_eq!(heap.pop().unwrap(), (at, s, v));
            popped += 1;
            if popped < 600 {
                // Deterministic pseudo-delays spanning slot, horizon, and
                // overflow ranges, plus same-instant loopbacks.
                let delays = [0u64, 7, 1 << 19, 3 << 20, 400_000_000, 2_000_000_000];
                let d = delays[(s as usize + popped as usize) % delays.len()];
                push_both(&mut wheel, &mut heap, SimTime::from_nanos(at.as_nanos() + d), seq);
                seq += 1;
            }
        }
        assert!(heap.pop().is_none());
        assert_eq!(wheel.len(), 0);
    }
}
