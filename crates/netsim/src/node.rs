//! The actor interface: [`Node`], [`Context`], and timers.
//!
//! Simulation participants implement [`Node`] and interact with the engine
//! exclusively through the [`Context`] handed to each callback. Side effects
//! (sends, timers) are buffered by the context and applied by the engine after
//! the callback returns, which keeps callbacks pure with respect to engine
//! state and guarantees a deterministic application order.

use std::any::Any;

use crate::metrics::MetricsRegistry;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a node within a [`Simulation`](crate::Simulation).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from a raw index previously obtained with
    /// [`NodeId::index`]. Using an index from a different simulation is not
    /// memory-unsafe but will address the wrong node.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A fired timer, delivered to [`Node::on_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timer {
    /// Unique id returned by [`Context::set_timer`].
    pub id: u64,
    /// Caller-chosen tag distinguishing timer purposes.
    pub tag: u64,
}

/// A message in flight, with routing metadata.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Originating node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Application payload.
    pub payload: M,
    /// Wire size used for serialization/queueing, in bytes.
    pub size_bytes: u32,
    /// Time the message was first offered to the network.
    pub sent_at: SimTime,
}

pub(crate) enum Op<M> {
    Send { dst: NodeId, payload: M, size_bytes: u32 },
    SetTimer { id: u64, after: SimDuration, tag: u64 },
    CancelTimer { id: u64 },
}

/// The engine handle passed to every [`Node`] callback.
///
/// All interaction with the simulated world — reading the clock, sending
/// messages, arming timers, drawing randomness, recording metrics — goes
/// through this type.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) id: NodeId,
    pub(crate) ops: &'a mut Vec<Op<M>>,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) metrics: &'a mut MetricsRegistry,
    pub(crate) timer_counter: &'a mut u64,
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node receiving this callback.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `payload` to `dst` with the given wire size.
    ///
    /// The message is routed over configured links (multi-hop if needed) and
    /// subject to their delay, loss, and queueing. Delivery is not guaranteed.
    pub fn send(&mut self, dst: NodeId, payload: M, size_bytes: u32) {
        self.ops.push(Op::Send { dst, payload, size_bytes });
    }

    /// Arms a one-shot timer that fires `after` from now, carrying `tag`.
    ///
    /// Returns the timer id, usable with [`Context::cancel_timer`].
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) -> u64 {
        // Ids pack the owning node into the high half over a per-node
        // counter: globally unique, yet assignable without any cross-node
        // state, so sharded execution mints the same ids as serial.
        *self.timer_counter += 1;
        debug_assert!(*self.timer_counter < 1 << 32, "per-node timer ids exhausted");
        let id = ((self.id.0 as u64) << 32) | *self.timer_counter;
        self.ops.push(Op::SetTimer { id, after, tag });
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: u64) {
        self.ops.push(Op::CancelTimer { id });
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// The simulation-wide metrics registry.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        self.metrics
    }
}

/// A simulation actor.
///
/// Implementors receive messages and timer callbacks and react by emitting
/// operations through the [`Context`]. The `Any` supertrait allows tests and
/// harnesses to downcast nodes back to their concrete type after a run via
/// [`Simulation::node_as`](crate::Simulation::node_as).
///
/// # Examples
///
/// ```
/// use metaclass_netsim::{Context, Node, NodeId, Timer};
///
/// struct Echo;
/// impl Node<String> for Echo {
///     fn on_message(&mut self, ctx: &mut Context<'_, String>, from: NodeId, msg: String) {
///         ctx.send(from, msg, 32);
///     }
/// }
/// ```
pub trait Node<M>: Any {
    /// Called once, at simulation start, in node-id order.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer armed by this node fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _timer: Timer) {}

    /// Called when the engine crashes this node (fault injection).
    ///
    /// Implementors should reset volatile protocol state here: a crashed
    /// process loses its memory, and `on_start` will run again at restart.
    /// No [`Context`] is available — a crashing node cannot send or arm
    /// timers, and any timers it had armed are voided by the engine.
    fn on_crash(&mut self) {}
}
