//! The discrete-event simulation engine.
//!
//! Two executors share one event-processing core: the serial reference
//! engine and the conservative shard-parallel engine in [`crate::shard`].
//! Event order is total — `(SimTime, causal stamp)` — and the stamp of every
//! event is computable from the state of the node that scheduled it, so both
//! executors produce byte-identical traces, metrics, and node states.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use crate::fault::{FaultAction, FaultPlan};
use crate::link::{DropReason, Link, LinkConfig, LinkId, Transmit};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::node::{Context, Envelope, Node, NodeId, Op, Timer};
use crate::observe::{SimEvent, SimObserver, SimView};
use crate::rng::DetRng;
use crate::sched::{EventQueue, TimerWheel};
use crate::shard::OwnedSimEvent;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent, TraceKind};

/// Which executor a [`Simulation`] uses to process events.
///
/// Both modes are byte-identical: same trace fingerprint, same metrics,
/// same node states. `Sharded` partitions the node graph and runs
/// lookahead-bounded event windows on worker threads; when the topology
/// cannot be partitioned with a positive lookahead the run falls back to
/// serial execution *loudly* — each fallback bumps the
/// `engine.fallback_serial` counter and, when tracing is enabled, appends a
/// [`TraceKind::EngineFallback`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Single-threaded reference executor: one global event loop.
    Serial,
    /// Conservative shard-parallel executor (see the `shard` module docs).
    Sharded {
        /// Number of shards (worker threads) to partition the node graph
        /// into. Values below 2 behave like `Serial`.
        shards: usize,
    },
}

/// Default shard count when the caller asks for `sharded` without a number.
pub const DEFAULT_SHARDS: usize = 4;

/// Per-simulation engine configuration: the executor plus its tuning knobs.
///
/// Every [`Simulation`] carries its own `EngineConfig` (set it with
/// [`Simulation::builder`] or [`Simulation::set_engine_config`]); there is
/// no process-global engine state on the supported path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Which executor processes events.
    pub mode: EngineMode,
    /// Enables adaptive lookahead (barrier elision) under
    /// [`EngineMode::Sharded`]: while all shards but one are quiescent and
    /// no cross-shard message is pending, the busy shard advances in
    /// multi-window leaps bounded by its next cross-shard send instead of
    /// synchronizing at every lookahead window. Results are byte-identical
    /// either way (property-tested); elided barriers are counted in
    /// `engine.barriers_elided`. `true` by default; inert under
    /// [`EngineMode::Serial`].
    pub adaptive_lookahead: bool,
}

impl Default for EngineConfig {
    /// Serial execution, adaptive lookahead enabled (inert until a sharded
    /// mode is selected).
    fn default() -> Self {
        EngineConfig { mode: EngineMode::Serial, adaptive_lookahead: true }
    }
}

impl EngineConfig {
    /// The serial reference executor.
    pub fn serial() -> Self {
        EngineConfig::default()
    }

    /// The sharded executor with `shards` worker lanes.
    pub fn sharded(shards: usize) -> Self {
        EngineConfig { mode: EngineMode::Sharded { shards }, ..EngineConfig::default() }
    }

    /// Returns the configuration with adaptive lookahead switched on or off.
    pub fn with_adaptive_lookahead(mut self, on: bool) -> Self {
        self.adaptive_lookahead = on;
        self
    }
}

impl From<EngineMode> for EngineConfig {
    fn from(mode: EngineMode) -> Self {
        EngineConfig { mode, ..EngineConfig::default() }
    }
}

/// Builder for a [`Simulation`]: master seed plus per-run [`EngineConfig`].
///
/// # Examples
///
/// ```
/// use metaclass_netsim::{EngineMode, Simulation};
///
/// let sim: Simulation<u64> =
///     Simulation::builder().seed(7).engine(EngineMode::Sharded { shards: 4 }).build();
/// assert_eq!(sim.engine(), EngineMode::Sharded { shards: 4 });
/// ```
pub struct SimulationBuilder<M> {
    seed: u64,
    config: EngineConfig,
    _msg: std::marker::PhantomData<fn() -> M>,
}

impl<M> SimulationBuilder<M> {
    /// Creates a builder with seed 0 and the default engine configuration.
    pub fn new() -> Self {
        SimulationBuilder {
            seed: 0,
            config: EngineConfig::default(),
            _msg: std::marker::PhantomData,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the executor, keeping the other engine knobs.
    pub fn engine(mut self, mode: EngineMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Replaces the whole engine configuration.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Switches adaptive lookahead on or off
    /// (see [`EngineConfig::adaptive_lookahead`]).
    pub fn adaptive_lookahead(mut self, on: bool) -> Self {
        self.config.adaptive_lookahead = on;
        self
    }
}

impl<M: 'static> SimulationBuilder<M> {
    /// Builds the (empty) simulation.
    pub fn build(self) -> Simulation<M> {
        Simulation::with_config(self.seed, self.config)
    }
}

impl<M> Default for SimulationBuilder<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses an engine name: `serial`, `sharded`, or `sharded:<n>`.
pub fn parse_engine(s: &str) -> Option<EngineMode> {
    match s {
        "serial" => Some(EngineMode::Serial),
        "sharded" => Some(EngineMode::Sharded { shards: DEFAULT_SHARDS }),
        _ => {
            let n: usize = s.strip_prefix("sharded:")?.parse().ok()?;
            (n >= 1).then_some(EngineMode::Sharded { shards: n })
        }
    }
}

// ---------------------------------------------------------------------------
// Causal event stamps.
//
// Events are keyed by `(SimTime, stamp)` where the 128-bit stamp packs
// `(depth: u16, origin: u32, counter: u64)`:
//
//   * `depth`   — same-instant causal depth: an event scheduled at the very
//     instant that is currently executing gets `current depth + 1`, an event
//     scheduled for a later instant gets 0. Within one instant, everything
//     already popped has a strictly smaller depth than anything a handler can
//     still push, so pop order equals stamp order — the property that lets
//     shard-local streams be merged back into the serial total order.
//   * `origin`  — the node whose handler (or forwarding hop) scheduled the
//     event; two reserved origins order engine-scheduled events after all
//     node-scheduled ones at the same depth.
//   * `counter` — per-origin push counter.
//
// All three components are derivable from the scheduling node's own state,
// so a shard computes exactly the stamps the serial engine would.
// ---------------------------------------------------------------------------

pub(crate) const INJECT_ORIGIN: u32 = u32::MAX;
pub(crate) const FAULT_ORIGIN: u32 = u32::MAX - 1;

pub(crate) fn pack_stamp(depth: u16, origin: u32, counter: u64) -> u128 {
    ((depth as u128) << 96) | ((origin as u128) << 64) | counter as u128
}

pub(crate) fn stamp_depth(stamp: u128) -> u16 {
    (stamp >> 96) as u16
}

/// Slab storage for in-flight [`Envelope`]s.
///
/// Queue entries reference envelopes by `u32` slab index instead of carrying
/// them inline, which keeps [`EventKind`] small, fixed-size, and independent
/// of the message type: the timer wheel moves 24-byte payloads around while
/// the (potentially fat) envelopes stay put. Freed slots are recycled LIFO,
/// so steady-state traffic performs no allocation once the slab has grown to
/// its high-water mark.
pub(crate) struct EnvSlab<M> {
    slots: Vec<Option<Envelope<M>>>,
    free: Vec<u32>,
    live: u32,
    high_water: u32,
}

impl<M> EnvSlab<M> {
    pub(crate) fn new() -> Self {
        EnvSlab { slots: Vec::new(), free: Vec::new(), live: 0, high_water: 0 }
    }

    pub(crate) fn insert(&mut self, env: Envelope<M>) -> u32 {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(env);
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Some(env));
                idx
            }
        }
    }

    pub(crate) fn take(&mut self, idx: u32) -> Envelope<M> {
        let env = self.slots[idx as usize].take().expect("envelope already taken");
        self.free.push(idx);
        self.live -= 1;
        env
    }

    pub(crate) fn get(&self, idx: u32) -> &Envelope<M> {
        self.slots[idx as usize].as_ref().expect("envelope already taken")
    }

    /// Highest number of envelopes ever live at once.
    pub(crate) fn high_water(&self) -> u32 {
        self.high_water
    }

    /// Folds in another slab's high water (largest per-executor-lane
    /// population wins).
    pub(crate) fn raise_high_water(&mut self, hw: u32) {
        if hw > self.high_water {
            self.high_water = hw;
        }
    }

    /// Committed heap footprint of the slab's own storage in bytes.
    pub(crate) fn arena_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<Option<Envelope<M>>>()
            + self.free.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

pub(crate) enum EventKind {
    /// Arrival of a message at `hop` (which may forward it further).
    Deliver {
        /// The node the message arrives at next.
        hop: NodeId,
        /// Slab index of the message in flight (see [`EnvSlab`]).
        env: u32,
    },
    /// A timer firing at `node`. Timers armed before a crash carry a stale
    /// `epoch` and are swallowed after restart.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Timer id minted by [`Context::set_timer`].
        id: u64,
        /// Caller-chosen tag.
        tag: u64,
        /// Node incarnation the timer was armed in.
        epoch: u64,
    },
    /// Execution of a scripted fault action (index into `fault_actions`).
    Fault {
        /// Index into the simulation's fault-action table.
        index: usize,
    },
}

/// Outcome of [`Core::step_inner`]: fault events bubble up to the
/// [`Simulation`], which owns the fault-action table.
pub(crate) enum Stepped {
    Idle,
    Events(u64),
    Fault { index: usize },
}

/// The event-processing core shared by the serial engine and every shard
/// lane. Holds exactly the state one event needs to execute; all vectors are
/// indexed by global node/link id in both modes (a lane simply leaves the
/// slots it does not own empty), so the processing code is the same bytes
/// for both executors.
pub(crate) struct Core<M> {
    pub(crate) time: SimTime,
    /// Depth component of the stamp of the event currently executing.
    pub(crate) cur_depth: u16,
    /// Full stamp of the event currently executing (buffer sort key).
    pub(crate) cur_stamp: u128,
    pub(crate) nodes: Vec<Option<Box<dyn Node<M> + Send>>>,
    pub(crate) rngs: Vec<DetRng>,
    /// Per-node event push counters (stamp `counter` component).
    pub(crate) push_counters: Vec<u64>,
    /// Per-node timer-id counters (see [`Context::set_timer`]).
    pub(crate) timer_counters: Vec<u64>,
    /// Whether each node is currently crashed (blackholed, timers voided).
    pub(crate) crashed: Vec<bool>,
    /// Incarnation counter per node; bumped at crash to void stale timers.
    pub(crate) epochs: Vec<u64>,
    pub(crate) links: Vec<Link>,
    /// Per-link RNG streams (loss draws, jitter), derived from the master
    /// seed by link id — independent of which executor runs the transmit.
    pub(crate) link_rngs: Vec<DetRng>,
    pub(crate) link_ends: Arc<Vec<(NodeId, NodeId)>>,
    /// adjacency[src] -> (dst -> link), deterministic order.
    pub(crate) adjacency: Arc<Vec<BTreeMap<u32, LinkId>>>,
    /// Static propagation delay per link in ns (routing weights). Shared so
    /// lanes can route across links they do not own.
    pub(crate) static_delays: Arc<Vec<u64>>,
    /// Per-source next-hop tables, computed lazily, cleared on topology change.
    pub(crate) route_cache: HashMap<u32, Vec<Option<(u32, LinkId)>>>,
    pub(crate) queue: TimerWheel<EventKind, u128>,
    /// In-flight envelopes referenced by queue entries (see [`EnvSlab`]).
    pub(crate) env_slab: EnvSlab<M>,
    pub(crate) cancelled_timers: HashSet<u64>,
    /// The recycled op arena handed to [`Context`] during dispatch. Dispatch
    /// is never re-entrant, so one buffer serves every handler; it grows to
    /// the widest op burst and is then reused allocation-free.
    pub(crate) ops_arena: Vec<Op<M>>,
    /// Widest op burst a single dispatch ever produced.
    pub(crate) ops_high_water: u64,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) events_processed: u64,
    /// Per-node processed-event counts; feeds the rate-weighted shard
    /// partitioner (observed rates beat static estimates on replans).
    pub(crate) node_events: Vec<u64>,
    /// Op-arena reuse counters, flushed to `engine.ops_pool.*` at run end.
    /// A hit is a dispatch served entirely from committed capacity; a miss
    /// is one that had to grow the arena.
    pub(crate) pool_hits: u64,
    pub(crate) pool_misses: u64,
    /// Sharded-mode runs that found no feasible plan and ran serially,
    /// flushed to `engine.fallback_serial` at run end.
    pub(crate) fallback_serial: u64,
    pub(crate) trace: Option<Trace>,
    /// Passive engine-boundary observer (see [`crate::observe`]).
    pub(crate) observer: Option<Box<dyn SimObserver>>,
    // --- shard-lane state; inert under the serial executor ---
    /// Lane mode: trace entries and observer events are buffered with their
    /// stamps instead of being emitted directly, for merge at the barrier.
    pub(crate) buffered: bool,
    pub(crate) trace_on: bool,
    pub(crate) observing: bool,
    /// Buffered trace entries, struct-of-arrays: the `(time, stamp)` merge
    /// keys live apart from the payloads so the k-way barrier merge scans a
    /// dense key lane per shard.
    pub(crate) trace_keys: Vec<(SimTime, u128)>,
    /// Payloads parallel to `trace_keys`.
    pub(crate) trace_items: Vec<TraceEvent>,
    /// Buffered observer-event merge keys (same layout as `trace_keys`).
    pub(crate) obs_keys: Vec<(SimTime, u128)>,
    /// Payloads parallel to `obs_keys`.
    pub(crate) obs_items: Vec<OwnedSimEvent>,
    /// Shard owning each node (lane mode only).
    pub(crate) shard_of: Option<Arc<Vec<u32>>>,
    pub(crate) my_shard: u32,
    /// Cross-shard deliveries produced this window, per destination shard.
    pub(crate) outboxes: Vec<Outbox<M>>,
    /// Cross-shard deliveries received at a barrier, awaiting drain into the
    /// local queue on the lane's next dispatch (one buffer per exchange).
    pub(crate) inboxes: Vec<Outbox<M>>,
    /// Earliest arrival across `inboxes` in ns (`u64::MAX` when empty).
    pub(crate) inbox_min_ns: u64,
    /// Earliest arrival queued per destination outbox this window
    /// (`u64::MAX` where that outbox is empty).
    pub(crate) outbox_mins: Vec<u64>,
    /// Earliest arrival across all outboxes this window (`u64::MAX` when no
    /// cross-shard send happened). Bounds adaptive solo windows.
    pub(crate) outbox_min_ns: u64,
    /// Recycled cross-shard exchange buffers.
    pub(crate) spare_boxes: Vec<Outbox<M>>,
    /// `net.sent` kept as a plain field on the hot path, flushed to the
    /// metrics registry at run end.
    pub(crate) sent_count: u64,
    /// `net.delivered` kept as a plain field, flushed at run end.
    pub(crate) delivered_count: u64,
    /// `net.delivery_latency_ns` samples kept as a plain histogram, merged
    /// into the registry at run end.
    pub(crate) delivery_hist: Histogram,
}

/// One shard-pair outbox: stamped cross-shard deliveries awaiting exchange.
pub(crate) type Outbox<M> = Vec<(SimTime, u128, NodeId, Envelope<M>)>;

impl<M> Core<M> {
    pub(crate) fn new_serial() -> Self {
        Core {
            time: SimTime::ZERO,
            cur_depth: 0,
            cur_stamp: 0,
            nodes: Vec::new(),
            rngs: Vec::new(),
            push_counters: Vec::new(),
            timer_counters: Vec::new(),
            crashed: Vec::new(),
            epochs: Vec::new(),
            links: Vec::new(),
            link_rngs: Vec::new(),
            link_ends: Arc::new(Vec::new()),
            adjacency: Arc::new(Vec::new()),
            static_delays: Arc::new(Vec::new()),
            route_cache: HashMap::new(),
            queue: TimerWheel::new(),
            env_slab: EnvSlab::new(),
            cancelled_timers: HashSet::new(),
            ops_arena: Vec::new(),
            ops_high_water: 0,
            metrics: MetricsRegistry::new(),
            events_processed: 0,
            node_events: Vec::new(),
            pool_hits: 0,
            pool_misses: 0,
            fallback_serial: 0,
            trace: None,
            observer: None,
            buffered: false,
            trace_on: false,
            observing: false,
            trace_keys: Vec::new(),
            trace_items: Vec::new(),
            obs_keys: Vec::new(),
            obs_items: Vec::new(),
            shard_of: None,
            my_shard: 0,
            outboxes: Vec::new(),
            inboxes: Vec::new(),
            inbox_min_ns: u64::MAX,
            outbox_mins: Vec::new(),
            outbox_min_ns: u64::MAX,
            spare_boxes: Vec::new(),
            sent_count: 0,
            delivered_count: 0,
            delivery_hist: Histogram::new(),
        }
    }

    /// Stamp for a child event scheduled at `at` by `origin`'s handler.
    fn child_stamp(&mut self, at: SimTime, origin: NodeId) -> u128 {
        let depth = if at == self.time { self.cur_depth.saturating_add(1) } else { 0 };
        let counter = &mut self.push_counters[origin.index()];
        *counter += 1;
        pack_stamp(depth, origin.0, *counter)
    }

    /// Enqueues a delivery, diverting it to the destination shard's outbox
    /// when it crosses a shard boundary (lane mode only).
    fn push_deliver(&mut self, at: SimTime, stamp: u128, hop: NodeId, env: Envelope<M>) {
        if let Some(map) = &self.shard_of {
            let dest = map[hop.index()];
            if dest != self.my_shard {
                let d = dest as usize;
                let ns = at.as_nanos();
                if ns < self.outbox_mins[d] {
                    self.outbox_mins[d] = ns;
                }
                if ns < self.outbox_min_ns {
                    self.outbox_min_ns = ns;
                }
                self.outboxes[d].push((at, stamp, hop, env));
                return;
            }
        }
        let env = self.env_slab.insert(env);
        self.queue.push(at, stamp, EventKind::Deliver { hop, env });
    }

    /// Earliest pending instant in this lane — local queue or an undrained
    /// inbox — in ns (`u64::MAX` when idle).
    pub(crate) fn earliest_pending_ns(&mut self) -> u64 {
        let q = self.queue.peek_key().map_or(u64::MAX, |(at, _)| at.as_nanos());
        q.min(self.inbox_min_ns)
    }

    /// Drains barrier-received cross-shard buffers into the local queue,
    /// recycling the buffers. Runs before any event of a lane window.
    pub(crate) fn drain_inboxes(&mut self) {
        if self.inboxes.is_empty() {
            return;
        }
        let mut bufs = std::mem::take(&mut self.inboxes);
        for buf in &mut bufs {
            for (at, stamp, hop, env) in buf.drain(..) {
                debug_assert!(at >= self.time, "cross-shard delivery in a lane's past");
                let env = self.env_slab.insert(env);
                self.queue.push(at, stamp, EventKind::Deliver { hop, env });
            }
        }
        self.spare_boxes.append(&mut bufs);
        self.inboxes = bufs;
        self.inbox_min_ns = u64::MAX;
    }

    fn record_trace(&mut self, kind: TraceKind, src: NodeId, dst: NodeId, size_bytes: u32) {
        if self.buffered {
            if self.trace_on {
                self.trace_keys.push((self.time, self.cur_stamp));
                self.trace_items.push(TraceEvent { at: self.time, kind, src, dst, size_bytes });
            }
        } else if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent { at: self.time, kind, src, dst, size_bytes });
        }
    }

    /// Hands `event` to the observer (if any) with a post-event view; in
    /// lane mode the event is buffered for in-order replay at the barrier.
    fn notify(&mut self, event: SimEvent<'_>) {
        if self.buffered {
            if self.observing {
                let owned = OwnedSimEvent::from_event(&event)
                    .expect("fault/inject events never occur inside a shard window");
                self.obs_keys.push((self.time, self.cur_stamp));
                self.obs_items.push(owned);
            }
            return;
        }
        let Some(mut observer) = self.observer.take() else { return };
        let view = SimView {
            time: self.time,
            crashed: &self.crashed,
            links: &self.links,
            link_ends: &self.link_ends,
        };
        observer.on_event(&view, &event);
        self.observer = Some(observer);
    }
}

impl<M: 'static> Core<M> {
    /// Processes the next event plus — within `budget` — any immediately
    /// following same-instant deliveries to the same node, which share one
    /// node borrow. Fault events advance the clock and bubble up for the
    /// owner of the fault table to execute.
    pub(crate) fn step_inner(&mut self, budget: u64) -> Stepped {
        let (at, stamp, kind) = match self.queue.pop() {
            Some(e) => e,
            None => return Stepped::Idle,
        };
        debug_assert!(at >= self.time, "time went backwards");
        self.time = at;
        self.cur_depth = stamp_depth(stamp);
        self.cur_stamp = stamp;
        self.events_processed += 1;
        let mut processed = 1;
        match kind {
            EventKind::Fault { index } => {
                return Stepped::Fault { index };
            }
            EventKind::Timer { node, id, tag, epoch } => {
                self.node_events[node.index()] += 1;
                if self.cancelled_timers.remove(&id) {
                    return Stepped::Events(processed);
                }
                // Timers armed before a crash are voided: the stale epoch (or
                // the crashed flag, while down) swallows them.
                if self.crashed[node.index()] || epoch != self.epochs[node.index()] {
                    return Stepped::Events(processed);
                }
                self.record_trace(TraceKind::TimerFired { tag }, node, node, 0);
                self.notify(SimEvent::TimerFired { node, tag });
                self.dispatch(node, Dispatch::Timer(Timer { id, tag }));
            }
            EventKind::Deliver { hop, env } => {
                let env = self.env_slab.take(env);
                self.node_events[hop.index()] += 1;
                if self.crashed[hop.index()] {
                    // Crashed nodes blackhole traffic addressed to or
                    // forwarded through them.
                    self.metrics.inc("net.dropped.node_down");
                    self.record_trace(
                        TraceKind::Dropped(DropReason::NodeDown),
                        env.src,
                        env.dst,
                        env.size_bytes,
                    );
                    self.notify(SimEvent::Dropped {
                        src: env.src,
                        dst: env.dst,
                        size_bytes: env.size_bytes,
                        reason: DropReason::NodeDown,
                    });
                } else if hop == env.dst {
                    let dst = env.dst;
                    let idx = dst.index();
                    let mut node = self.nodes[idx].take().expect("re-entrant dispatch");
                    self.record_delivery(&env);
                    let from = env.src;
                    self.dispatch_node(&mut node, dst, Dispatch::Message(from, env.payload));
                    // Batch the fan-out pattern: further final deliveries to
                    // this node at this exact instant reuse the borrow. Each
                    // message is still recorded and its ops applied before
                    // the next one, so traces, metrics, and RNG draws are
                    // byte-for-byte those of the unbatched path.
                    while processed < budget {
                        let now = self.time;
                        let slab = &self.env_slab;
                        let next = self.queue.pop_if(|ev_at, _, k| {
                            ev_at == now
                                && matches!(
                                    k,
                                    EventKind::Deliver { hop, env }
                                        if *hop == dst && slab.get(*env).dst == dst
                                )
                        });
                        match next {
                            Some((_, stamp, EventKind::Deliver { env, .. })) => {
                                let env = self.env_slab.take(env);
                                self.node_events[dst.index()] += 1;
                                self.events_processed += 1;
                                processed += 1;
                                self.cur_depth = stamp_depth(stamp);
                                self.cur_stamp = stamp;
                                self.record_delivery(&env);
                                let from = env.src;
                                self.dispatch_node(
                                    &mut node,
                                    dst,
                                    Dispatch::Message(from, env.payload),
                                );
                            }
                            Some(_) => unreachable!("pop_if admits only deliveries"),
                            None => break,
                        }
                    }
                    self.nodes[idx] = Some(node);
                } else {
                    // Transparent forwarding at an intermediate hop.
                    self.route_and_transmit(hop, env);
                }
            }
        }
        Stepped::Events(processed)
    }

    /// Counters, latency histogram, and trace entry for one final delivery.
    fn record_delivery(&mut self, env: &Envelope<M>) {
        self.delivered_count += 1;
        self.delivery_hist.record(self.time.duration_since(env.sent_at).as_nanos());
        self.record_trace(TraceKind::Delivered, env.src, env.dst, env.size_bytes);
        self.notify(SimEvent::Delivered {
            src: env.src,
            dst: env.dst,
            size_bytes: env.size_bytes,
            sent_at: env.sent_at,
        });
    }

    pub(crate) fn dispatch(&mut self, node_id: NodeId, what: Dispatch<M>) {
        let idx = node_id.index();
        let mut node = self.nodes[idx].take().expect("re-entrant dispatch");
        self.dispatch_node(&mut node, node_id, what);
        self.nodes[idx] = Some(node);
    }

    /// Runs one handler on an already-borrowed node and applies its ops.
    #[allow(clippy::borrowed_box)]
    fn dispatch_node(
        &mut self,
        node: &mut Box<dyn Node<M> + Send>,
        node_id: NodeId,
        what: Dispatch<M>,
    ) {
        let idx = node_id.index();
        // Dispatch is never nested (handlers cannot dispatch), so the single
        // recycled arena buffer serves every call; a nested call would merely
        // see an empty buffer and count a miss.
        let mut ops: Vec<Op<M>> = std::mem::take(&mut self.ops_arena);
        let cap_before = ops.capacity();
        {
            let mut ctx = Context {
                now: self.time,
                id: node_id,
                ops: &mut ops,
                rng: &mut self.rngs[idx],
                metrics: &mut self.metrics,
                timer_counter: &mut self.timer_counters[idx],
            };
            match what {
                Dispatch::Start => node.on_start(&mut ctx),
                Dispatch::Message(from, msg) => node.on_message(&mut ctx, from, msg),
                Dispatch::Timer(t) => node.on_timer(&mut ctx, t),
            }
        }
        if ops.capacity() > cap_before {
            self.pool_misses += 1;
        } else {
            self.pool_hits += 1;
        }
        if ops.len() as u64 > self.ops_high_water {
            self.ops_high_water = ops.len() as u64;
        }
        for op in ops.drain(..) {
            match op {
                Op::Send { dst, payload, size_bytes } => {
                    self.sent_count += 1;
                    let env =
                        Envelope { src: node_id, dst, payload, size_bytes, sent_at: self.time };
                    self.record_trace(TraceKind::Sent, node_id, dst, size_bytes);
                    self.notify(SimEvent::Sent { src: node_id, dst, size_bytes });
                    if dst == node_id {
                        // Loopback: deliver immediately (next event).
                        let stamp = self.child_stamp(self.time, node_id);
                        let env = self.env_slab.insert(env);
                        self.queue.push(self.time, stamp, EventKind::Deliver { hop: dst, env });
                    } else {
                        self.route_and_transmit(node_id, env);
                    }
                }
                Op::SetTimer { id, after, tag } => {
                    let at = self.time.saturating_add(after);
                    let epoch = self.epochs[node_id.index()];
                    let stamp = self.child_stamp(at, node_id);
                    self.queue.push(at, stamp, EventKind::Timer { node: node_id, id, tag, epoch });
                }
                Op::CancelTimer { id } => {
                    self.cancelled_timers.insert(id);
                }
            }
        }
        self.ops_arena = ops;
    }

    fn route_and_transmit(&mut self, at_node: NodeId, env: Envelope<M>) {
        // Prefer a direct link; otherwise consult the routing table.
        let hop = if let Some(&link) = self.adjacency[at_node.index()].get(&env.dst.0) {
            Some((env.dst.0, link))
        } else {
            self.next_hop(at_node, env.dst)
        };
        let (next_node, link_id) = match hop {
            Some(h) => h,
            None => {
                self.metrics.inc("net.dropped.no_route");
                self.record_trace(TraceKind::NoRoute, env.src, env.dst, env.size_bytes);
                self.notify(SimEvent::NoRoute {
                    src: env.src,
                    dst: env.dst,
                    size_bytes: env.size_bytes,
                });
                return;
            }
        };
        let li = link_id.index();
        match self.links[li].transmit(self.time, env.size_bytes, &mut self.link_rngs[li]) {
            Transmit::Deliver { at } => {
                let stamp = self.child_stamp(at, at_node);
                self.push_deliver(at, stamp, NodeId(next_node), env);
            }
            Transmit::Drop(reason) => {
                let metric = match reason {
                    DropReason::QueueFull => "net.dropped.queue",
                    DropReason::Loss => "net.dropped.loss",
                    DropReason::LinkDown => "net.dropped.down",
                    DropReason::NodeDown => "net.dropped.node_down",
                };
                self.metrics.inc(metric);
                self.record_trace(TraceKind::Dropped(reason), env.src, env.dst, env.size_bytes);
                self.notify(SimEvent::Dropped {
                    src: env.src,
                    dst: env.dst,
                    size_bytes: env.size_bytes,
                    reason,
                });
            }
        }
    }

    /// Computes (and caches) the next hop from `src` toward `dst` by
    /// Dijkstra over static link propagation delays.
    fn next_hop(&mut self, src: NodeId, dst: NodeId) -> Option<(u32, LinkId)> {
        if !self.route_cache.contains_key(&src.0) {
            let table = self.dijkstra_from(src);
            self.route_cache.insert(src.0, table);
        }
        self.route_cache[&src.0].get(dst.index()).copied().flatten()
    }

    fn dijkstra_from(&self, src: NodeId) -> Vec<Option<(u32, LinkId)>> {
        let n = self.nodes.len();
        let mut dist = vec![u64::MAX; n];
        let mut first_hop: Vec<Option<(u32, LinkId)>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[src.index()] = 0;
        heap.push(Reverse((0, src.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for (&v, &link) in &self.adjacency[u as usize] {
                let w = self.static_delays[link.index()].max(1);
                let nd = d.saturating_add(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    first_hop[v as usize] =
                        if u == src.0 { Some((v, link)) } else { first_hop[u as usize] };
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        first_hop
    }
}

/// A deterministic discrete-event simulation of nodes connected by links.
///
/// The engine owns all nodes, links, the event queue, per-node RNG streams,
/// and a metrics registry. Event order is total — (time, causal stamp) —
/// so a run is a pure function of configuration and seed, regardless of the
/// selected [`EngineMode`].
///
/// # Examples
///
/// ```
/// use metaclass_netsim::{Context, LinkConfig, Node, NodeId, SimDuration, SimTime, Simulation};
///
/// struct Ping;
/// struct Pong(u32);
/// impl Node<u32> for Ping {
///     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
///         ctx.send(NodeId::from_index(1), 7, 64);
///     }
///     fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
/// }
/// impl Node<u32> for Pong {
///     fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, msg: u32) {
///         self.0 = msg;
///     }
/// }
///
/// let mut sim = Simulation::new(42);
/// let a = sim.add_node("ping", Ping);
/// let b = sim.add_node("pong", Pong(0));
/// sim.connect(a, b, LinkConfig::new(SimDuration::from_millis(1)));
/// sim.run_until_idle();
/// assert_eq!(sim.node_as::<Pong>(b).unwrap().0, 7);
/// assert_eq!(sim.time(), SimTime::from_millis(1));
/// ```
pub struct Simulation<M> {
    pub(crate) core: Core<M>,
    names: Vec<String>,
    /// Scripted fault actions, indexed by `EventKind::Fault` events.
    fault_actions: Vec<FaultAction>,
    master_rng: DetRng,
    started: bool,
    inject_counter: u64,
    pub(crate) engine: EngineConfig,
    /// Bumped on every topology change; invalidates the shard plan.
    pub(crate) topo_version: u64,
    pub(crate) shard_cache: Option<crate::shard::ShardCache>,
    /// Caller-supplied relative event-rate estimates per node
    /// (see [`Simulation::set_rate_hint`]); 0 = no estimate.
    pub(crate) rate_hints: Vec<u64>,
}

impl<M: 'static> Simulation<M> {
    /// Creates an empty simulation with the given master seed and the
    /// default [`EngineConfig`] (serial). Use [`Simulation::builder`] to
    /// pick the engine per run.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, EngineConfig::default())
    }

    /// Creates an empty simulation with an explicit engine configuration.
    pub fn with_config(seed: u64, config: EngineConfig) -> Self {
        Simulation {
            core: Core::new_serial(),
            names: Vec::new(),
            fault_actions: Vec::new(),
            master_rng: DetRng::new(seed),
            started: false,
            inject_counter: 0,
            engine: config,
            topo_version: 0,
            shard_cache: None,
            rate_hints: Vec::new(),
        }
    }

    /// Starts building a simulation: master seed plus per-run
    /// [`EngineConfig`].
    pub fn builder() -> SimulationBuilder<M> {
        SimulationBuilder::new()
    }

    /// Selects the executor for subsequent runs, keeping the other engine
    /// knobs. Safe to change between runs; the produced traces, metrics,
    /// and node states are identical either way.
    pub fn set_engine(&mut self, mode: EngineMode) {
        self.engine.mode = mode;
        self.shard_cache = None;
    }

    /// The currently selected executor.
    pub fn engine(&self) -> EngineMode {
        self.engine.mode
    }

    /// Replaces the whole engine configuration for subsequent runs.
    pub fn set_engine_config(&mut self, config: EngineConfig) {
        self.engine = config;
        self.shard_cache = None;
    }

    /// The engine configuration in effect.
    pub fn engine_config(&self) -> EngineConfig {
        self.engine
    }

    /// Registers a node and returns its id. Nodes receive `on_start` in id
    /// order when the simulation first runs.
    pub fn add_node(&mut self, name: impl Into<String>, node: impl Node<M> + Send) -> NodeId {
        let id = NodeId(self.core.nodes.len() as u32);
        self.core.nodes.push(Some(Box::new(node)));
        self.names.push(name.into());
        self.core.rngs.push(self.master_rng.derive(id.0 as u64));
        self.core.push_counters.push(0);
        self.core.timer_counters.push(0);
        self.core.crashed.push(false);
        self.core.epochs.push(0);
        self.core.node_events.push(0);
        self.rate_hints.push(0);
        Arc::make_mut(&mut self.core.adjacency).push(BTreeMap::new());
        self.topo_version += 1;
        id
    }

    /// Supplies a relative event-rate estimate for `node`, used by the
    /// sharded engine's partitioner to balance shards by expected work
    /// instead of node count. Only ratios matter; 0 (the default) means
    /// "no estimate" and falls back to a structural guess (node degree).
    /// Observed per-node event counts from earlier runs of the same
    /// simulation take precedence over hints when the plan is recomputed.
    /// Never affects results — only which shard executes a node.
    pub fn set_rate_hint(&mut self, node: NodeId, weight: u64) {
        self.rate_hints[node.index()] = weight;
        self.shard_cache = None;
    }

    /// Connects `a` and `b` with symmetric directed links of configuration
    /// `cfg`, returning `(a→b, b→a)` link ids.
    pub fn connect(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        (self.connect_directed(a, b, cfg), self.connect_directed(b, a, cfg))
    }

    /// Adds a single directed link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either node id is unknown or a `from → to` link already exists.
    pub fn connect_directed(&mut self, from: NodeId, to: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(from.index() < self.core.nodes.len(), "unknown source node");
        assert!(to.index() < self.core.nodes.len(), "unknown destination node");
        assert!(
            !self.core.adjacency[from.index()].contains_key(&to.0),
            "link {from} -> {to} already exists"
        );
        let id = LinkId(self.core.links.len() as u32);
        self.core.links.push(Link::new(cfg));
        // Link RNG streams live in a namespace disjoint from node streams
        // (node ids are < 2^32).
        const LINK_STREAM: u64 = 0x4C49_4E4B_0000_0000; // "LINK"
        self.core.link_rngs.push(self.master_rng.derive(LINK_STREAM | id.0 as u64));
        Arc::make_mut(&mut self.core.link_ends).push((from, to));
        Arc::make_mut(&mut self.core.static_delays).push(cfg.delay().as_nanos());
        Arc::make_mut(&mut self.core.adjacency)[from.index()].insert(to.0, id);
        self.core.route_cache.clear();
        self.topo_version += 1;
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.core.nodes.len()
    }

    /// Name given to `id` at registration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Borrows a node, downcast to its concrete type; `None` if the type does
    /// not match.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the node is currently being dispatched.
    pub fn node_as<T: Node<M>>(&self, id: NodeId) -> Option<&T> {
        let node = self.core.nodes[id.index()].as_ref().expect("node is being dispatched");
        (node.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrows a node, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the node is currently being dispatched.
    pub fn node_as_mut<T: Node<M>>(&mut self, id: NodeId) -> Option<&mut T> {
        let node = self.core.nodes[id.index()].as_mut().expect("node is being dispatched");
        (node.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Borrows a link's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.core.links[id.index()]
    }

    /// Mutably borrows a link (e.g. for failure injection via
    /// [`Link::set_up`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.core.links[id.index()]
    }

    /// The directed link `from → to`, if one exists.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.core.adjacency.get(from.index())?.get(&to.0).copied()
    }

    /// Brings both directions between `a` and `b` up or down, maintaining
    /// flap accounting and the `net.link.flaps` counter.
    ///
    /// # Panics
    ///
    /// Panics if either directed link does not exist.
    pub fn set_connection_up(&mut self, a: NodeId, b: NodeId, up: bool) {
        let ab = self.link_between(a, b).expect("no a->b link");
        let ba = self.link_between(b, a).expect("no b->a link");
        self.with_flap_metric(ab, |link, now| link.set_up_at(now, up));
        self.with_flap_metric(ba, |link, now| link.set_up_at(now, up));
    }

    /// Applies a state change to a link and mirrors any new availability
    /// flaps into the `net.link.flaps` counter.
    fn with_flap_metric(&mut self, id: LinkId, apply: impl FnOnce(&mut Link, SimTime)) {
        let now = self.core.time;
        let link = &mut self.core.links[id.index()];
        let before = link.stats().flaps;
        apply(link, now);
        let delta = link.stats().flaps - before;
        if delta > 0 {
            self.core.metrics.add("net.link.flaps", delta);
        }
    }

    /// Severs every link whose endpoints fall in different `groups`,
    /// emulating a network partition. Nodes not listed in any group keep all
    /// their links. Partition state is tracked separately from admin state:
    /// [`Simulation::heal_partition`] restores exactly the links severed
    /// here, never administratively downed ones.
    pub fn partition(&mut self, groups: &[&[NodeId]]) {
        let owned: Vec<Vec<NodeId>> = groups.iter().map(|g| g.to_vec()).collect();
        self.partition_groups(&owned);
    }

    fn partition_groups(&mut self, groups: &[Vec<NodeId>]) {
        let mut membership: Vec<Option<usize>> = vec![None; self.core.nodes.len()];
        for (gi, group) in groups.iter().enumerate() {
            for node in group {
                membership[node.index()] = Some(gi);
            }
        }
        for i in 0..self.core.links.len() {
            let (from, to) = self.core.link_ends[i];
            if let (Some(ga), Some(gb)) = (membership[from.index()], membership[to.index()]) {
                if ga != gb {
                    self.with_flap_metric(LinkId(i as u32), |link, now| {
                        link.set_partitioned_at(now, true)
                    });
                }
            }
        }
    }

    /// Heals all partition-severed links.
    pub fn heal_partition(&mut self) {
        for i in 0..self.core.links.len() {
            if self.core.links[i].is_partitioned() {
                self.with_flap_metric(LinkId(i as u32), |link, now| {
                    link.set_partitioned_at(now, false)
                });
            }
        }
    }

    /// Crashes `node`: its volatile state is reset via
    /// [`Node::on_crash`], all pending timers are voided, and traffic
    /// addressed to (or forwarded through) it is blackholed until
    /// [`Simulation::restart_node`]. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown or currently being dispatched.
    pub fn crash_node(&mut self, node: NodeId) {
        let idx = node.index();
        if self.core.crashed[idx] {
            return;
        }
        self.core.crashed[idx] = true;
        self.core.epochs[idx] += 1;
        self.core.metrics.inc("net.node.crashes");
        let n = self.core.nodes[idx].as_mut().expect("node is being dispatched");
        n.on_crash();
    }

    /// Restarts a crashed node: `on_start` runs again (re-arming timers) and
    /// traffic flows to it once more. No-op if the node is not crashed.
    pub fn restart_node(&mut self, node: NodeId) {
        let idx = node.index();
        if !self.core.crashed[idx] {
            return;
        }
        self.core.crashed[idx] = false;
        self.core.metrics.inc("net.node.restarts");
        if self.started {
            self.core.dispatch(node, Dispatch::Start);
        }
    }

    /// Whether `node` is currently crashed.
    pub fn is_node_crashed(&self, node: NodeId) -> bool {
        self.core.crashed[node.index()]
    }

    /// Installs a fault plan: each scripted action becomes an engine event
    /// executed at its scheduled time, recorded in metrics
    /// (`fault.injected` plus a per-action counter) and, when tracing is
    /// enabled, in the trace as [`TraceKind::Fault`].
    ///
    /// # Panics
    ///
    /// Panics if any action is scheduled before the current time.
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        for (at, action) in plan.into_sorted_events() {
            assert!(at >= self.core.time, "fault scheduled in the past");
            let index = self.fault_actions.len();
            self.fault_actions.push(action);
            let stamp = pack_stamp(0, FAULT_ORIGIN, index as u64);
            self.core.queue.push(at, stamp, EventKind::Fault { index });
        }
    }

    pub(crate) fn execute_fault(&mut self, index: usize) {
        let action = self.fault_actions[index].clone();
        self.core.metrics.inc("fault.injected");
        self.core.metrics.inc(action.metric());
        let (src, dst) = match &action {
            FaultAction::LinkDown { a, b }
            | FaultAction::LinkUp { a, b }
            | FaultAction::LossBurstStart { a, b, .. }
            | FaultAction::LossBurstEnd { a, b }
            | FaultAction::LatencySpikeStart { a, b, .. }
            | FaultAction::LatencySpikeEnd { a, b } => (*a, *b),
            FaultAction::CrashNode { node } | FaultAction::RestartNode { node } => (*node, *node),
            FaultAction::Partition { .. } | FaultAction::Heal => (NodeId(0), NodeId(0)),
        };
        self.core.record_trace(TraceKind::Fault { code: action.code() }, src, dst, 0);
        match action {
            FaultAction::LinkDown { a, b } => self.set_connection_up(a, b, false),
            FaultAction::LinkUp { a, b } => self.set_connection_up(a, b, true),
            FaultAction::LossBurstStart { a, b, loss } => {
                self.for_both_directions(a, b, |link| link.set_loss_override(Some(loss)));
            }
            FaultAction::LossBurstEnd { a, b } => {
                self.for_both_directions(a, b, |link| link.set_loss_override(None));
            }
            FaultAction::LatencySpikeStart { a, b, extra } => {
                self.for_both_directions(a, b, |link| link.set_extra_delay(extra));
            }
            FaultAction::LatencySpikeEnd { a, b } => {
                self.for_both_directions(a, b, |link| {
                    link.set_extra_delay(crate::time::SimDuration::ZERO)
                });
            }
            FaultAction::Partition { groups } => self.partition_groups(&groups),
            FaultAction::Heal => self.heal_partition(),
            FaultAction::CrashNode { node } => self.crash_node(node),
            FaultAction::RestartNode { node } => self.restart_node(node),
        }
        if self.core.observer.is_some() {
            let action = self.fault_actions[index].clone();
            self.core.notify(SimEvent::Fault { action: &action });
        }
    }

    fn for_both_directions(&mut self, a: NodeId, b: NodeId, mut apply: impl FnMut(&mut Link)) {
        let ab = self.link_between(a, b).expect("no a->b link");
        let ba = self.link_between(b, a).expect("no b->a link");
        apply(&mut self.core.links[ab.index()]);
        apply(&mut self.core.links[ba.index()]);
    }

    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.core.time
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// The simulation-wide metrics registry.
    ///
    /// Engine self-observation counters (the `engine.` namespace: op-pool
    /// hit rates, shard window counts) are flushed here at the end of each
    /// `run_*` call; they describe the executor, not the simulated world,
    /// and are the one part of the registry allowed to differ between
    /// [`EngineMode`]s.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.core.metrics
    }

    /// Mutable access to the metrics registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.core.metrics
    }

    /// Installs a passive observer invoked at every engine boundary
    /// (send/inject/delivery/drop/no-route/timer/fault). Replaces any
    /// previously installed observer. Observation never perturbs the run:
    /// event order, metrics, and trace fingerprints are identical with or
    /// without one, under either engine.
    pub fn set_observer(&mut self, observer: impl SimObserver + 'static) {
        self.core.observer = Some(Box::new(observer));
    }

    /// Removes and returns the installed observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn SimObserver>> {
        self.core.observer.take()
    }

    /// Whether an observer is currently installed.
    pub fn has_observer(&self) -> bool {
        self.core.observer.is_some()
    }

    /// Enables event tracing, keeping at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.core.trace.as_ref()
    }

    /// Schedules a message to arrive at `dst` at absolute time `at`,
    /// bypassing the network. Intended for tests and workload injection.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject(&mut self, at: SimTime, src: NodeId, dst: NodeId, payload: M, size_bytes: u32) {
        assert!(at >= self.core.time, "cannot inject into the past");
        let env = Envelope { src, dst, payload, size_bytes, sent_at: self.core.time };
        self.inject_counter += 1;
        let stamp = pack_stamp(0, INJECT_ORIGIN, self.inject_counter);
        let env = self.core.env_slab.insert(env);
        self.core.queue.push(at, stamp, EventKind::Deliver { hop: dst, env });
        self.core.notify(SimEvent::Injected { src, dst, size_bytes });
    }

    pub(crate) fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.core.nodes.len() {
            if self.core.crashed[i] {
                continue;
            }
            self.core.dispatch(NodeId(i as u32), Dispatch::Start);
        }
    }

    /// One serial step: processes up to `budget` events (fault actions
    /// included), returning how many were consumed. Shared by the serial
    /// run loops and the sharded engine's serialized fault instants.
    pub(crate) fn step_budget(&mut self, budget: u64) -> u64 {
        match self.core.step_inner(budget) {
            Stepped::Idle => 0,
            Stepped::Events(n) => n,
            Stepped::Fault { index } => {
                self.execute_fault(index);
                1
            }
        }
    }

    /// Moves counters accumulated as plain fields (kept off the hot path)
    /// into the metrics registry: the `engine.` self-observation counters
    /// plus the per-event `net.sent` / `net.delivered` / delivery-latency
    /// aggregates.
    pub(crate) fn flush_engine_metrics(&mut self) {
        if self.core.pool_hits > 0 {
            let v = std::mem::take(&mut self.core.pool_hits);
            self.core.metrics.add("engine.ops_pool.hit", v);
        }
        if self.core.pool_misses > 0 {
            let v = std::mem::take(&mut self.core.pool_misses);
            self.core.metrics.add("engine.ops_pool.miss", v);
        }
        if self.core.fallback_serial > 0 {
            let v = std::mem::take(&mut self.core.fallback_serial);
            self.core.metrics.add("engine.fallback_serial", v);
        }
        // Memory-pressure gauges (max semantics: the counter is raised to the
        // observed high-water, never lowered), so overload runs expose their
        // arena growth instead of hiding it.
        let ops_hw = self.core.ops_high_water;
        self.raise_engine_gauge("engine.ops_pool.high_water", ops_hw);
        let env_hw = self.core.env_slab.high_water() as u64;
        self.raise_engine_gauge("engine.env_slab.high_water", env_hw);
        let arena_bytes = (self.core.ops_arena.capacity() * std::mem::size_of::<Op<M>>()) as u64
            + self.core.env_slab.arena_bytes();
        self.raise_engine_gauge("engine.ops_pool.arena_bytes", arena_bytes);
        if self.core.sent_count > 0 {
            let v = std::mem::take(&mut self.core.sent_count);
            self.core.metrics.add("net.sent", v);
        }
        if self.core.delivered_count > 0 {
            let v = std::mem::take(&mut self.core.delivered_count);
            self.core.metrics.add("net.delivered", v);
        }
        if !self.core.delivery_hist.is_empty() {
            let core = &mut self.core;
            core.metrics.histogram("net.delivery_latency_ns").merge(&core.delivery_hist);
            core.delivery_hist.clear();
        }
    }

    /// Raises a gauge-like engine counter to `v` if it is below it.
    fn raise_engine_gauge(&mut self, name: &'static str, v: u64) {
        let cur = self.core.metrics.counter_value(name);
        if v > cur {
            self.core.metrics.add(name, v - cur);
        }
    }

    /// Records that a sharded run could not be planned and fell back to the
    /// serial executor: bumps the `engine.fallback_serial` counter and, when
    /// tracing is enabled, appends an [`TraceKind::EngineFallback`] record —
    /// the fallback is an explicit signal, never silent.
    pub(crate) fn note_serial_fallback(&mut self) {
        self.core.fallback_serial += 1;
        if let Some(trace) = &mut self.core.trace {
            trace.push(TraceEvent {
                at: self.core.time,
                kind: TraceKind::EngineFallback,
                src: NodeId(0),
                dst: NodeId(0),
                size_bytes: 0,
            });
        }
    }

    /// Processes a single event; returns its time, or `None` if idle.
    pub fn step(&mut self) -> Option<SimTime> {
        self.ensure_started();
        if self.step_budget(1) > 0 {
            // Keep the registry view current for step-at-a-time callers.
            self.flush_engine_metrics();
            Some(self.core.time)
        } else {
            None
        }
    }
}

impl<M: Send + 'static> Simulation<M> {
    /// Runs until the event queue is empty or `limit` events were processed
    /// in this call. Returns the number of events processed.
    ///
    /// Under [`EngineMode::Sharded`] the cap is enforced at window
    /// granularity: the run stops at the first barrier at or past `limit`.
    pub fn run_until_idle_capped(&mut self, limit: u64) -> u64 {
        self.ensure_started();
        if let Some(n) = crate::shard::try_run_sharded(self, SimTime::MAX, limit) {
            self.flush_engine_metrics();
            return n;
        }
        let mut n = 0;
        while n < limit {
            let processed = self.step_budget(limit - n);
            if processed == 0 {
                break;
            }
            n += processed;
        }
        self.flush_engine_metrics();
        n
    }

    /// Runs until the event queue is empty.
    pub fn run_until_idle(&mut self) {
        self.run_until_idle_capped(u64::MAX);
    }

    /// Runs until simulated time reaches `until` (events at exactly `until`
    /// are processed) or the queue empties. The clock is left at `until` if
    /// the queue emptied earlier than that.
    pub fn run_until(&mut self, until: SimTime) {
        self.ensure_started();
        if crate::shard::try_run_sharded(self, until, u64::MAX).is_none() {
            while let Some((at, _)) = self.core.queue.peek_key() {
                if at > until {
                    break;
                }
                self.step_budget(u64::MAX);
            }
        }
        if self.core.time < until {
            self.core.time = until;
        }
        self.flush_engine_metrics();
    }
}

pub(crate) enum Dispatch<M> {
    Start,
    Message(NodeId, M),
    Timer(Timer),
}

impl<M> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("time", &self.core.time)
            .field("nodes", &self.core.nodes.len())
            .field("links", &self.core.links.len())
            .field("pending_events", &self.core.queue.len())
            .field("events_processed", &self.core.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u64),
        Pong(u64),
    }

    struct Pinger {
        peer: Option<NodeId>,
        sent: u64,
        rtts: Vec<SimDuration>,
        last_sent: SimTime,
        max_pings: u64,
    }

    impl Pinger {
        fn new(max_pings: u64) -> Self {
            Pinger { peer: None, sent: 0, rtts: Vec::new(), last_sent: SimTime::ZERO, max_pings }
        }
    }

    impl Node<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if let Some(peer) = self.peer {
                self.sent += 1;
                self.last_sent = ctx.now();
                ctx.send(peer, Msg::Ping(self.sent), 64);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(n) => ctx.send(from, Msg::Pong(n), 64),
                Msg::Pong(_) => {
                    self.rtts.push(ctx.now().duration_since(self.last_sent));
                    if self.sent < self.max_pings {
                        self.sent += 1;
                        self.last_sent = ctx.now();
                        ctx.send(from, Msg::Ping(self.sent), 64);
                    }
                }
            }
        }
    }

    fn two_node_sim(delay_ms: u64) -> (Simulation<Msg>, NodeId, NodeId) {
        let mut sim = Simulation::new(7);
        let a = sim.add_node("a", Pinger::new(10));
        let b = sim.add_node("b", Pinger::new(0));
        sim.node_as_mut::<Pinger>(a).unwrap().peer = Some(b);
        sim.connect(a, b, LinkConfig::new(SimDuration::from_millis(delay_ms)));
        (sim, a, b)
    }

    #[test]
    fn ping_pong_rtt_is_twice_one_way() {
        let (mut sim, a, _b) = two_node_sim(5);
        sim.run_until_idle();
        let pinger = sim.node_as::<Pinger>(a).unwrap();
        assert_eq!(pinger.rtts.len(), 10);
        for rtt in &pinger.rtts {
            assert_eq!(*rtt, SimDuration::from_millis(10));
        }
        assert_eq!(sim.metrics().counter_value("net.delivered"), 20);
    }

    #[test]
    fn run_until_respects_the_clock() {
        let (mut sim, _a, _b) = two_node_sim(5);
        sim.run_until(SimTime::from_millis(24));
        // RTT = 10 ms; pongs at 10 and 20 ms have been received.
        assert_eq!(sim.time(), SimTime::from_millis(24));
        sim.run_until_idle();
        assert_eq!(sim.time(), SimTime::from_millis(100));
    }

    #[test]
    fn same_seed_same_fingerprint() {
        let run = |seed| {
            let mut sim = Simulation::new(seed);
            let a = sim.add_node("a", Pinger::new(20));
            let b = sim.add_node("b", Pinger::new(0));
            sim.node_as_mut::<Pinger>(a).unwrap().peer = Some(b);
            let cfg = LinkConfig::new(SimDuration::from_millis(3))
                .with_jitter(SimDuration::from_millis(1))
                .with_loss(crate::link::LossModel::Iid { p: 0.05 });
            sim.connect(a, b, cfg);
            sim.enable_trace(10_000);
            sim.run_until_idle();
            sim.trace().unwrap().fingerprint()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    struct Ticker {
        fired: Vec<(SimTime, u64)>,
        cancel_second: bool,
    }

    impl Node<Msg> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(1), 1);
            let id = ctx.set_timer(SimDuration::from_millis(2), 2);
            ctx.set_timer(SimDuration::from_millis(3), 3);
            if self.cancel_second {
                ctx.cancel_timer(id);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, timer: Timer) {
            self.fired.push((ctx.now(), timer.tag));
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut sim: Simulation<Msg> = Simulation::new(1);
        let t = sim.add_node("t", Ticker { fired: vec![], cancel_second: true });
        sim.run_until_idle();
        let fired = &sim.node_as::<Ticker>(t).unwrap().fired;
        assert_eq!(fired, &vec![(SimTime::from_millis(1), 1), (SimTime::from_millis(3), 3)]);
    }

    struct Forwarder;
    impl Node<Msg> for Forwarder {
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {
            panic!("intermediate hops must not receive forwarded messages");
        }
    }

    struct Sink {
        got: Vec<(SimTime, NodeId)>,
    }
    impl Node<Msg> for Sink {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, _: Msg) {
            self.got.push((ctx.now(), from));
        }
    }

    struct Source {
        dst: NodeId,
    }
    impl Node<Msg> for Source {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.dst, Msg::Ping(1), 128);
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
    }

    #[test]
    fn multi_hop_routing_is_transparent_and_latency_adds_up() {
        let mut sim: Simulation<Msg> = Simulation::new(5);
        let sink = sim.add_node("sink", Sink { got: vec![] });
        let relay = sim.add_node("relay", Forwarder);
        let src = sim.add_node("src", Source { dst: sink });
        sim.connect(src, relay, LinkConfig::new(SimDuration::from_millis(2)));
        sim.connect(relay, sink, LinkConfig::new(SimDuration::from_millis(3)));
        sim.run_until_idle();
        let got = &sim.node_as::<Sink>(sink).unwrap().got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, SimTime::from_millis(5));
        assert_eq!(got[0].1, src, "sender identity is preserved across hops");
    }

    #[test]
    fn routing_prefers_the_shorter_path() {
        let mut sim: Simulation<Msg> = Simulation::new(5);
        let sink = sim.add_node("sink", Sink { got: vec![] });
        let slow_relay = sim.add_node("slow", Forwarder);
        let fast_relay = sim.add_node("fast", Forwarder);
        let src = sim.add_node("src", Source { dst: sink });
        sim.connect(src, slow_relay, LinkConfig::new(SimDuration::from_millis(50)));
        sim.connect(slow_relay, sink, LinkConfig::new(SimDuration::from_millis(50)));
        sim.connect(src, fast_relay, LinkConfig::new(SimDuration::from_millis(1)));
        sim.connect(fast_relay, sink, LinkConfig::new(SimDuration::from_millis(1)));
        sim.run_until_idle();
        let got = &sim.node_as::<Sink>(sink).unwrap().got;
        assert_eq!(got[0].0, SimTime::from_millis(2));
    }

    #[test]
    fn unroutable_messages_are_counted_not_fatal() {
        let mut sim: Simulation<Msg> = Simulation::new(5);
        let sink = sim.add_node("sink", Sink { got: vec![] });
        let _iso = sim.add_node("isolated", Source { dst: sink });
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter_value("net.dropped.no_route"), 1);
        assert!(sim.node_as::<Sink>(sink).unwrap().got.is_empty());
    }

    #[test]
    fn inject_delivers_without_network() {
        let mut sim: Simulation<Msg> = Simulation::new(5);
        let sink = sim.add_node("sink", Sink { got: vec![] });
        let other = sim.add_node("other", Forwarder);
        sim.inject(SimTime::from_millis(7), other, sink, Msg::Ping(9), 10);
        sim.run_until_idle();
        let got = &sim.node_as::<Sink>(sink).unwrap().got;
        assert_eq!(got, &vec![(SimTime::from_millis(7), other)]);
    }

    #[test]
    fn link_down_blackholes_traffic() {
        let mut sim: Simulation<Msg> = Simulation::new(5);
        let sink = sim.add_node("sink", Sink { got: vec![] });
        let src = sim.add_node("src", Source { dst: sink });
        sim.connect(src, sink, LinkConfig::new(SimDuration::from_millis(1)));
        sim.set_connection_up(src, sink, false);
        sim.run_until_idle();
        assert!(sim.node_as::<Sink>(sink).unwrap().got.is_empty());
        assert_eq!(sim.metrics().counter_value("net.dropped.down"), 1);
    }

    /// Counts messages and tick timers; resets its counters on crash.
    struct Counter {
        got: u64,
        ticks: u64,
        starts: u64,
        crashes: u64,
    }

    impl Counter {
        fn new() -> Self {
            Counter { got: 0, ticks: 0, starts: 0, crashes: 0 }
        }
    }

    impl Node<Msg> for Counter {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            self.starts += 1;
            ctx.set_timer(SimDuration::from_millis(10), 77);
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {
            self.got += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: Timer) {
            self.ticks += 1;
            ctx.set_timer(SimDuration::from_millis(10), 77);
        }
        fn on_crash(&mut self) {
            self.crashes += 1;
            self.got = 0;
            self.ticks = 0;
        }
    }

    #[test]
    fn crashed_node_blackholes_and_stops_ticking() {
        let mut sim: Simulation<Msg> = Simulation::new(3);
        let c = sim.add_node("counter", Counter::new());
        let src = sim.add_node("src", Forwarder);
        sim.connect(src, c, LinkConfig::new(SimDuration::from_millis(1)));
        sim.run_until(SimTime::from_millis(35)); // 3 ticks at 10/20/30 ms
        assert_eq!(sim.node_as::<Counter>(c).unwrap().ticks, 3);
        sim.crash_node(c);
        assert!(sim.is_node_crashed(c));
        assert_eq!(sim.node_as::<Counter>(c).unwrap().crashes, 1);
        sim.inject(SimTime::from_millis(40), src, c, Msg::Ping(1), 8);
        sim.run_until(SimTime::from_millis(100));
        let counter = sim.node_as::<Counter>(c).unwrap();
        assert_eq!(counter.got, 0, "messages to a crashed node are blackholed");
        assert_eq!(counter.ticks, 0, "timers do not fire while crashed");
        assert_eq!(sim.metrics().counter_value("net.dropped.node_down"), 1);
    }

    #[test]
    fn restart_rearms_timers_and_voids_stale_ones() {
        let mut sim: Simulation<Msg> = Simulation::new(3);
        let c = sim.add_node("counter", Counter::new());
        sim.run_until(SimTime::from_millis(5));
        sim.crash_node(c);
        sim.run_until(SimTime::from_millis(50));
        sim.restart_node(c);
        assert!(!sim.is_node_crashed(c));
        sim.run_until(SimTime::from_millis(75)); // restarted ticks at 60/70 ms
        let counter = sim.node_as::<Counter>(c).unwrap();
        assert_eq!(counter.starts, 2, "on_start runs again at restart");
        assert_eq!(counter.ticks, 2, "only post-restart timers fire");
        assert_eq!(sim.metrics().counter_value("net.node.crashes"), 1);
        assert_eq!(sim.metrics().counter_value("net.node.restarts"), 1);
    }

    #[test]
    fn partition_severs_cross_group_links_only() {
        let mut sim: Simulation<Msg> = Simulation::new(3);
        let a = sim.add_node("a", Counter::new());
        let b = sim.add_node("b", Counter::new());
        let c = sim.add_node("c", Counter::new());
        sim.connect(a, b, LinkConfig::new(SimDuration::from_millis(1)));
        sim.connect(a, c, LinkConfig::new(SimDuration::from_millis(1)));
        sim.connect(b, c, LinkConfig::new(SimDuration::from_millis(1)));
        let (side_a, side_bc): (&[NodeId], &[NodeId]) = (&[a], &[b, c]);
        sim.partition(&[side_a, side_bc]);
        assert!(!sim.link(sim.link_between(a, b).unwrap()).is_available());
        assert!(!sim.link(sim.link_between(a, c).unwrap()).is_available());
        assert!(sim.link(sim.link_between(b, c).unwrap()).is_available());
        assert_eq!(sim.metrics().counter_value("net.link.flaps"), 4);
        sim.heal_partition();
        assert!(sim.link(sim.link_between(a, b).unwrap()).is_available());
        assert!(sim.link(sim.link_between(a, c).unwrap()).is_available());
    }

    #[test]
    fn fault_plan_executes_on_schedule() {
        let mut sim: Simulation<Msg> = Simulation::new(3);
        let sink = sim.add_node("sink", Sink { got: vec![] });
        let c = sim.add_node("counter", Counter::new());
        sim.connect(sink, c, LinkConfig::new(SimDuration::from_millis(1)));
        sim.enable_trace(10_000);
        let plan = crate::fault::FaultPlan::new().crash(
            c,
            SimTime::from_millis(25),
            Some(SimTime::from_millis(55)),
        );
        sim.apply_fault_plan(plan);
        sim.run_until(SimTime::from_millis(80));
        let counter = sim.node_as::<Counter>(c).unwrap();
        // Ticks at 10, 20 (then crash at 25, restart at 55), 65, 75.
        assert_eq!(counter.starts, 2);
        assert_eq!(counter.ticks, 2);
        assert_eq!(sim.metrics().counter_value("fault.injected"), 2);
        assert_eq!(sim.metrics().counter_value("fault.crash"), 1);
        assert_eq!(sim.metrics().counter_value("fault.restart"), 1);
        let faults = sim
            .trace()
            .unwrap()
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, TraceKind::Fault { .. }))
            .count();
        assert_eq!(faults, 2);
    }

    /// Counts engine-boundary events by kind.
    #[derive(Default)]
    struct CountingObserver {
        sent: u64,
        delivered: u64,
        dropped: u64,
        timers: u64,
        faults: u64,
        injected: u64,
        no_route: u64,
    }

    impl crate::observe::SimObserver for std::sync::Arc<std::sync::Mutex<CountingObserver>> {
        fn on_event(&mut self, _view: &crate::SimView<'_>, event: &crate::SimEvent<'_>) {
            let mut c = self.lock().unwrap();
            match event {
                crate::SimEvent::Sent { .. } => c.sent += 1,
                crate::SimEvent::Delivered { .. } => c.delivered += 1,
                crate::SimEvent::Dropped { .. } => c.dropped += 1,
                crate::SimEvent::TimerFired { .. } => c.timers += 1,
                crate::SimEvent::Fault { .. } => c.faults += 1,
                crate::SimEvent::Injected { .. } => c.injected += 1,
                crate::SimEvent::NoRoute { .. } => c.no_route += 1,
            }
        }
    }

    #[test]
    fn observer_sees_every_boundary_and_counts_match_metrics() {
        let counts = std::sync::Arc::new(std::sync::Mutex::new(CountingObserver::default()));
        let mut sim: Simulation<Msg> = Simulation::new(3);
        let sink = sim.add_node("sink", Sink { got: vec![] });
        let c = sim.add_node("counter", Counter::new());
        sim.connect(sink, c, LinkConfig::new(SimDuration::from_millis(1)));
        sim.set_observer(std::sync::Arc::clone(&counts));
        assert!(sim.has_observer());
        let plan = crate::fault::FaultPlan::new().crash(
            c,
            SimTime::from_millis(25),
            Some(SimTime::from_millis(55)),
        );
        sim.apply_fault_plan(plan);
        sim.inject(SimTime::from_millis(5), sink, c, Msg::Ping(1), 8);
        sim.run_until(SimTime::from_millis(80));
        let got = counts.lock().unwrap();
        assert_eq!(got.faults, 2, "crash + restart both observed");
        assert_eq!(got.injected, 1);
        assert_eq!(got.delivered, sim.metrics().counter_value("net.delivered"));
        assert_eq!(got.timers, 4, "ticks at 10/20 then 65/75 after restart");
        assert_eq!(got.sent, sim.metrics().counter_value("net.sent"));
    }

    #[test]
    fn observer_does_not_perturb_the_run() {
        let run = |observe: bool| {
            let mut sim = Simulation::new(99);
            let a = sim.add_node("a", Pinger::new(20));
            let b = sim.add_node("b", Pinger::new(0));
            sim.node_as_mut::<Pinger>(a).unwrap().peer = Some(b);
            let cfg = LinkConfig::new(SimDuration::from_millis(3))
                .with_jitter(SimDuration::from_millis(1))
                .with_loss(crate::link::LossModel::Iid { p: 0.05 });
            sim.connect(a, b, cfg);
            sim.enable_trace(10_000);
            if observe {
                sim.set_observer(|_: &crate::SimView<'_>, _: &crate::SimEvent<'_>| {});
            }
            sim.run_until_idle();
            sim.trace().unwrap().fingerprint()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn crashed_node_receives_no_observed_deliveries_or_timers() {
        let counts = std::sync::Arc::new(std::sync::Mutex::new(CountingObserver::default()));
        let mut sim: Simulation<Msg> = Simulation::new(3);
        let c = sim.add_node("counter", Counter::new());
        let src = sim.add_node("src", Forwarder);
        sim.connect(src, c, LinkConfig::new(SimDuration::from_millis(1)));
        sim.set_observer(std::sync::Arc::clone(&counts));
        sim.run_until(SimTime::from_millis(15)); // one tick at 10 ms
        sim.crash_node(c);
        sim.inject(SimTime::from_millis(40), src, c, Msg::Ping(1), 8);
        sim.run_until(SimTime::from_millis(100));
        let got = counts.lock().unwrap();
        assert_eq!(got.timers, 1, "no timer fires while crashed");
        assert_eq!(got.delivered, 0);
        assert_eq!(got.dropped, 1, "the injected message blackholes");
    }

    #[test]
    fn loopback_send_is_delivered() {
        struct SelfSender {
            got: u32,
        }
        impl Node<Msg> for SelfSender {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                let id = ctx.id();
                ctx.send(id, Msg::Ping(0), 8);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {
                self.got += 1;
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(5);
        let n = sim.add_node("self", SelfSender { got: 0 });
        sim.run_until_idle();
        assert_eq!(sim.node_as::<SelfSender>(n).unwrap().got, 1);
    }

    #[test]
    fn engine_names_parse() {
        assert_eq!(parse_engine("serial"), Some(EngineMode::Serial));
        assert_eq!(parse_engine("sharded"), Some(EngineMode::Sharded { shards: DEFAULT_SHARDS }));
        assert_eq!(parse_engine("sharded:2"), Some(EngineMode::Sharded { shards: 2 }));
        assert_eq!(parse_engine("sharded:0"), None);
        assert_eq!(parse_engine("bogus"), None);
    }

    #[test]
    fn stamps_pack_and_unpack() {
        let s = pack_stamp(3, 7, 42);
        assert_eq!(stamp_depth(s), 3);
        assert!(pack_stamp(0, u32::MAX, 0) < pack_stamp(1, 0, 0), "depth dominates origin");
        assert!(pack_stamp(0, 1, u64::MAX) < pack_stamp(0, 2, 0), "origin dominates counter");
        assert!(pack_stamp(0, FAULT_ORIGIN, 9) < pack_stamp(0, INJECT_ORIGIN, 0));
    }

    #[test]
    fn builder_carries_the_engine_config_per_run() {
        let sim: Simulation<Msg> = Simulation::builder()
            .seed(11)
            .engine(EngineMode::Sharded { shards: 4 })
            .adaptive_lookahead(false)
            .build();
        assert_eq!(sim.engine(), EngineMode::Sharded { shards: 4 });
        assert!(!sim.engine_config().adaptive_lookahead);
        // A second simulation is unaffected: nothing process-global moved.
        let other: Simulation<Msg> = Simulation::new(12);
        assert_eq!(other.engine(), EngineMode::Serial);
        assert!(other.engine_config().adaptive_lookahead);
        // Explicit configs stand on their own too.
        let sim: Simulation<Msg> = Simulation::with_config(3, EngineConfig::sharded(2));
        assert_eq!(sim.engine(), EngineMode::Sharded { shards: 2 });
    }
}
