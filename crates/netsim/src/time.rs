//! Simulated time.
//!
//! All simulation time is integer nanoseconds wrapped in newtypes
//! ([`SimTime`], [`SimDuration`]) so that protocol code can never confuse a
//! point in time with a span, and never accumulates floating-point error.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use metaclass_netsim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(16);
/// assert_eq!(t.as_nanos(), 16_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use metaclass_netsim::SimDuration;
///
/// let tick = SimDuration::from_rate_hz(60.0);
/// assert!(tick > SimDuration::from_millis(16));
/// assert!(tick < SimDuration::from_millis(17));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is after `self` (saturating).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a span from fractional milliseconds, rounding to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// The period of an event recurring at `hz` events per second.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn from_rate_hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "rate must be positive");
        Self::from_secs_f64(1.0 / hz)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds in this span, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The serialization time of `bytes` bytes on a `bits_per_sec` link.
    pub fn from_transmission(bytes: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "bandwidth must be positive");
        // nanos = bytes*8 / bps * 1e9, computed in u128 to avoid overflow.
        let nanos = (bytes as u128 * 8 * 1_000_000_000) / bits_per_sec as u128;
        SimDuration(nanos as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(5) + SimDuration::from_micros(250);
        assert_eq!(t.as_nanos(), 5_250_000);
        assert_eq!(t - SimTime::from_millis(5), SimDuration::from_micros(250));
        assert_eq!(t - SimDuration::from_micros(250), SimTime::from_millis(5));
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
        assert_eq!(late.duration_since(early), SimDuration::from_millis(1));
    }

    #[test]
    fn rate_to_period() {
        let p = SimDuration::from_rate_hz(1000.0);
        assert_eq!(p, SimDuration::from_millis(1));
        let p60 = SimDuration::from_rate_hz(60.0);
        assert_eq!(p60.as_nanos(), 16_666_667);
    }

    #[test]
    fn transmission_time_is_exact() {
        // 1500 bytes at 12 kbit/s = 1 second.
        let d = SimDuration::from_transmission(1500, 12_000);
        assert_eq!(d, SimDuration::from_secs(1));
        // 125 bytes at 1 Gbps = 1 microsecond.
        let d = SimDuration::from_transmission(125, 1_000_000_000);
        assert_eq!(d, SimDuration::from_micros(1));
    }

    #[test]
    fn transmission_time_no_overflow_on_large_inputs() {
        let d = SimDuration::from_transmission(u32::MAX as u64, 1_000);
        assert!(d.as_secs_f64() > 3e7);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_millis(1).to_string(), "t=1.00ms");
    }

    #[test]
    fn mul_and_div_scale() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = SimDuration::from_rate_hz(0.0);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(SimDuration::MAX.checked_add(SimDuration::from_nanos(1)), None);
    }
}
