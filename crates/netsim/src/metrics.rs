//! Simulation metrics: counters, log-bucketed histograms, and a registry.
//!
//! All collections use `BTreeMap` so that iteration (and therefore any report
//! built from a registry) is deterministic.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Number of linear sub-buckets per power-of-two bucket group.
const SUB_BUCKETS: usize = 16;
const SUB_BUCKET_BITS: u32 = 4;
/// Total bucket count: 16 linear buckets + 60 exponent groups x 16 sub-buckets.
const BUCKETS: usize = 61 * SUB_BUCKETS;

/// A log-linear histogram of `u64` samples (HDR-histogram style).
///
/// Values are bucketed with ~6% relative resolution across the full `u64`
/// range, which is ample for latency (nanoseconds) and size (bytes) data.
///
/// # Examples
///
/// ```
/// use metaclass_netsim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1_000, 2_000, 3_000, 100_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) >= 2_000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let sub = ((value >> (exp - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        ((exp - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Upper bound (inclusive) of values mapping to `bucket`.
    fn bucket_upper(bucket: usize) -> u64 {
        if bucket < SUB_BUCKETS {
            return bucket as u64;
        }
        let group = (bucket / SUB_BUCKETS) as u32 + SUB_BUCKET_BITS - 1;
        let sub = (bucket % SUB_BUCKETS) as u128;
        let base = 1u128 << group;
        let step = 1u128 << (group - SUB_BUCKET_BITS);
        u64::try_from(base + (sub + 1) * step - 1).unwrap_or(u64::MAX)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples in one step.
    ///
    /// Equivalent to calling [`Histogram::record`] `n` times; the flyweight
    /// population layer uses this to account for every pooled client without
    /// iterating over them. Recording zero samples is a no-op.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a duration, in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample; `0` when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample; `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at percentile `p` (0–100), within bucket resolution (~6%).
    ///
    /// Returns `0` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Resets the histogram to empty while keeping its bucket allocation,
    /// so accumulate-then-flush loops stay allocation-free.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// A compact numeric summary of the distribution.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            max: self.max(),
        }
    }
}

/// Summary statistics extracted from a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: u64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum sample.
    pub max: u64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} p50={} p90={} p99={} max={}",
            self.count, self.mean, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

impl Summary {
    /// Formats the summary interpreting samples as nanosecond durations.
    pub fn display_as_millis(&self) -> String {
        format!(
            "n={} mean={:.2}ms p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
            self.count,
            self.mean / 1e6,
            self.p50 as f64 / 1e6,
            self.p90 as f64 / 1e6,
            self.p99 as f64 / 1e6,
            self.max as f64 / 1e6,
        )
    }
}

/// A named collection of counters and histograms with deterministic iteration.
///
/// # Examples
///
/// ```
/// use metaclass_netsim::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.add("packets.sent", 3);
/// m.histogram("latency.ns").record(1_500);
/// assert_eq!(m.counter_value("packets.sent"), 3);
/// assert_eq!(m.histogram("latency.ns").count(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    ///
    /// Steady-state increments are allocation-free: the owned key `String`
    /// is only built the first time a name is seen.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of the named counter (zero if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, created empty on first access.
    ///
    /// Repeat access is allocation-free: the owned key `String` is only
    /// built the first time a name is seen.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_owned(), Histogram::default());
        }
        self.histograms.get_mut(name).expect("just inserted")
    }

    /// The named histogram if it has been created.
    pub fn histogram_if_present(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// A serializable point-in-time export of the registry: raw counter
    /// values plus a [`Summary`] per histogram, both in name order. This is
    /// the form consumed by JSON writers (sweep results, dashboards) — it is
    /// stable under merge order and cheap to diff.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self.histograms.iter().map(|(k, h)| (k.clone(), h.summary())).collect(),
        }
    }
}

/// A serializable export of a [`MetricsRegistry`], produced by
/// [`MetricsRegistry::snapshot`].
///
/// Counter values are exact; histograms are reduced to their
/// [`Summary`] statistics. Iteration order (and therefore any serialized
/// form backed by these maps) is deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, Summary>,
}

impl MetricsSnapshot {
    /// A copy with every counter and histogram whose name starts with
    /// `prefix` removed. Identity comparisons between engine modes use
    /// `without_prefix("engine.")`: the `engine.` namespace describes the
    /// executor itself (op-pool reuse, shard windows), and is the only part
    /// of the registry allowed to differ between serial and sharded runs.
    pub fn without_prefix(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| !k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| !k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name}: {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "{name}: {}", h.summary())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for b in 1..BUCKETS {
            let u = Histogram::bucket_upper(b);
            assert!(u >= prev, "bucket {b}: {u} < {prev}");
            prev = u;
        }
    }

    #[test]
    fn bucket_of_matches_upper_bound() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u32::MAX as u64, 1 << 40] {
            let b = Histogram::bucket_of(v);
            assert!(Histogram::bucket_upper(b) >= v, "value {v} bucket {b}");
            if b > 0 {
                assert!(Histogram::bucket_upper(b - 1) < v, "value {v} bucket {b}");
            }
        }
    }

    #[test]
    fn percentile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let exact = (p / 100.0 * 10_000.0) as u64;
            let est = h.percentile(p);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.07, "p{p}: est {est} exact {exact}");
        }
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn merge_preserves_sum_count_and_buckets() {
        // Merging two histograms must be exactly equivalent to recording
        // every sample into one: bucket-wise add, sum/count/min/max intact.
        let samples_a = [3u64, 17, 250, 9_999];
        let samples_b = [1u64, 250, 1 << 20];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut reference = Histogram::new();
        for v in samples_a {
            a.record(v);
            reference.record(v);
        }
        for v in samples_b {
            b.record(v);
            reference.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), reference.count());
        assert_eq!(a.sum, reference.sum);
        assert_eq!(a.min(), reference.min());
        assert_eq!(a.max(), reference.max());
        assert_eq!(a.counts, reference.counts);
        assert_eq!(a.mean(), reference.mean());
        for p in [10.0, 50.0, 95.0, 99.0] {
            assert_eq!(a.percentile(p), reference.percentile(p));
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = a.summary();
        a.merge(&Histogram::new());
        assert_eq!(a.summary(), before);
        // And empty ← non-empty adopts the other's extremes.
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.min(), 42);
        assert_eq!(empty.max(), 42);
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("x");
        a.add("x", 2);
        let mut b = MetricsRegistry::new();
        b.add("x", 10);
        b.histogram("h").record(5);
        a.merge(&b);
        assert_eq!(a.counter_value("x"), 13);
        assert_eq!(a.histogram("h").count(), 1);
        assert_eq!(a.counter_value("never"), 0);
    }

    #[test]
    fn snapshot_exports_counters_and_summaries() {
        let mut m = MetricsRegistry::new();
        m.add("pkts", 7);
        m.histogram("lat").record(1_000);
        m.histogram("lat").record(3_000);
        let snap = m.snapshot();
        assert_eq!(snap.counters.get("pkts"), Some(&7));
        let lat = snap.histograms.get("lat").expect("histogram exported");
        assert_eq!(lat.count, 2);
        assert_eq!(lat.min, 1_000);
        assert_eq!(lat.max, 3_000);
        // Snapshot of a merge equals merge of snapshots' sources.
        let mut other = MetricsRegistry::new();
        other.add("pkts", 3);
        other.histogram("lat").record(2_000);
        m.merge(&other);
        let merged = m.snapshot();
        assert_eq!(merged.counters.get("pkts"), Some(&10));
        assert_eq!(merged.histograms.get("lat").unwrap().count, 3);
    }

    #[test]
    fn without_prefix_strips_the_engine_namespace_only() {
        let mut a = MetricsRegistry::new();
        a.add("delivered", 5);
        a.add("engine.shard.windows", 3);
        a.add("engine.ops_pool.hit", 9);
        a.histogram("rtt_ns").record(1_000);
        a.histogram("engine.shard.events_per_window").record(40);

        // Engine counters obey the ordinary merge rules (summed, histograms
        // pooled) — reassembly folds lane registries through `merge`.
        let mut b = MetricsRegistry::new();
        b.add("engine.shard.windows", 2);
        b.histogram("engine.shard.events_per_window").record(60);
        a.merge(&b);
        assert_eq!(a.counter_value("engine.shard.windows"), 5);

        let world = a.snapshot().without_prefix("engine.");
        assert_eq!(world.counters.get("delivered"), Some(&5));
        assert!(world.counters.keys().all(|k| !k.starts_with("engine.")));
        assert!(world.histograms.contains_key("rtt_ns"));
        assert!(!world.histograms.contains_key("engine.shard.events_per_window"));
        // The unfiltered snapshot still carries the engine namespace.
        assert_eq!(a.snapshot().counters.get("engine.ops_pool.hit"), Some(&9));
    }

    #[test]
    fn summary_display_is_nonempty() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        let s = h.summary();
        assert!(s.to_string().contains("n=1"));
        assert!(s.display_as_millis().contains("1.00ms"));
    }
}
