//! Link presets and geography for blueprint topologies.
//!
//! The blueprint's Figure 3 names four transport classes — headset WiFi,
//! wired sensor links, the inter-campus WAN, and the public Internet reaching
//! remote learners — and its scalability discussion (§3.3) requires a
//! worldwide user population with regional servers. [`LinkClass`] provides
//! calibrated [`LinkConfig`] presets for the former; [`Region`] provides an
//! inter-region one-way latency matrix for the latter.

use serde::{Deserialize, Serialize};

use crate::link::{LinkConfig, LossModel};
use crate::time::SimDuration;

/// Calibrated presets for the transport classes in the blueprint.
///
/// # Examples
///
/// ```
/// use metaclass_netsim::LinkClass;
///
/// let wifi = LinkClass::Wifi.config();
/// let wired = LinkClass::WiredLan.config();
/// assert!(wifi.delay() > wired.delay());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Classroom WiFi between a headset and the local edge server
    /// (802.11ac-class: ~2 ms, jittery, occasionally lossy).
    Wifi,
    /// Wired LAN between room sensors and the local edge server.
    WiredLan,
    /// Dedicated inter-campus backbone (e.g. HKUST CWB ↔ GZ, ~7.5 ms one-way).
    CampusBackbone,
    /// Edge server to a nearby cloud (metro distance).
    MetroWan,
    /// Residential last-mile access for remote learners.
    ResidentialAccess,
    /// Congested/cellular access: higher jitter and burst loss.
    CellularAccess,
}

impl LinkClass {
    /// The calibrated link configuration for this class.
    pub fn config(self) -> LinkConfig {
        match self {
            LinkClass::Wifi => LinkConfig::new(SimDuration::from_millis(2))
                .with_jitter(SimDuration::from_micros(1_500))
                .with_loss(LossModel::Iid { p: 0.005 })
                .with_bandwidth_bps(50_000_000)
                .with_queue_capacity_bytes(256 * 1024),
            LinkClass::WiredLan => LinkConfig::new(SimDuration::from_micros(200))
                .with_jitter(SimDuration::from_micros(50))
                .with_loss(LossModel::Iid { p: 0.0001 })
                .with_bandwidth_bps(1_000_000_000)
                .with_queue_capacity_bytes(1024 * 1024),
            LinkClass::CampusBackbone => LinkConfig::new(SimDuration::from_micros(7_500))
                .with_jitter(SimDuration::from_micros(500))
                .with_loss(LossModel::Iid { p: 0.0005 })
                .with_bandwidth_bps(1_000_000_000)
                .with_queue_capacity_bytes(4 * 1024 * 1024),
            LinkClass::MetroWan => LinkConfig::new(SimDuration::from_millis(4))
                .with_jitter(SimDuration::from_micros(800))
                .with_loss(LossModel::Iid { p: 0.0005 })
                .with_bandwidth_bps(1_000_000_000)
                .with_queue_capacity_bytes(4 * 1024 * 1024),
            LinkClass::ResidentialAccess => LinkConfig::new(SimDuration::from_millis(8))
                .with_jitter(SimDuration::from_millis(2))
                .with_loss(LossModel::Iid { p: 0.002 })
                .with_bandwidth_bps(100_000_000)
                .with_queue_capacity_bytes(512 * 1024),
            LinkClass::CellularAccess => LinkConfig::new(SimDuration::from_millis(25))
                .with_jitter(SimDuration::from_millis(8))
                .with_loss(LossModel::GilbertElliott {
                    p_good_to_bad: 0.01,
                    p_bad_to_good: 0.25,
                    loss_good: 0.001,
                    loss_bad: 0.15,
                })
                .with_bandwidth_bps(30_000_000)
                .with_queue_capacity_bytes(512 * 1024),
        }
    }
}

/// A world region hosting remote learners or servers.
///
/// Indexes into a calibrated one-way inter-region latency matrix
/// (public-Internet medians, in milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// East Asia (Hong Kong, Guangzhou, Seoul, Tokyo) — the blueprint's campuses.
    EastAsia,
    /// Southeast Asia (Singapore, Jakarta).
    SoutheastAsia,
    /// South Asia (Mumbai, Delhi).
    SouthAsia,
    /// Europe (Frankfurt, London, Cambridge).
    Europe,
    /// North America (Boston/MIT, Virginia, California).
    NorthAmerica,
    /// South America (São Paulo).
    SouthAmerica,
    /// Oceania (Sydney).
    Oceania,
    /// Africa (Johannesburg, Cairo).
    Africa,
}

impl Region {
    /// All regions, in declaration order.
    pub const ALL: [Region; 8] = [
        Region::EastAsia,
        Region::SoutheastAsia,
        Region::SouthAsia,
        Region::Europe,
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Oceania,
        Region::Africa,
    ];

    fn idx(self) -> usize {
        match self {
            Region::EastAsia => 0,
            Region::SoutheastAsia => 1,
            Region::SouthAsia => 2,
            Region::Europe => 3,
            Region::NorthAmerica => 4,
            Region::SouthAmerica => 5,
            Region::Oceania => 6,
            Region::Africa => 7,
        }
    }

    /// One-way median latency in milliseconds between region cores.
    pub fn one_way_ms(self, other: Region) -> u64 {
        // Symmetric matrix of one-way medians (ms).
        const M: [[u64; 8]; 8] = [
            //  EA  SEA  SA   EU   NA  SAm   OC   AF
            [5, 25, 45, 90, 60, 130, 55, 110],    // EastAsia
            [25, 5, 30, 85, 85, 160, 45, 95],     // SoutheastAsia
            [45, 30, 5, 65, 110, 150, 75, 80],    // SouthAsia
            [90, 85, 65, 5, 40, 95, 140, 45],     // Europe
            [60, 85, 110, 40, 5, 75, 75, 90],     // NorthAmerica
            [130, 160, 150, 95, 75, 5, 140, 120], // SouthAmerica
            [55, 45, 75, 140, 75, 140, 5, 130],   // Oceania
            [110, 95, 80, 45, 90, 120, 130, 5],   // Africa
        ];
        M[self.idx()][other.idx()]
    }

    /// A backbone link configuration between two region cores: one-way
    /// propagation from the matrix, 5% jitter, light loss.
    pub fn backbone_to(self, other: Region) -> LinkConfig {
        let ms = self.one_way_ms(other);
        LinkConfig::new(SimDuration::from_millis(ms))
            .with_jitter(SimDuration::from_millis_f64(ms as f64 * 0.05))
            .with_loss(LossModel::Iid { p: 0.0005 })
            .with_bandwidth_bps(10_000_000_000)
            .with_queue_capacity_bytes(16 * 1024 * 1024)
    }

    /// The region nearest to `self` among `candidates` (by one-way latency);
    /// `None` if `candidates` is empty. Ties break toward the earlier
    /// candidate.
    pub fn nearest_of(self, candidates: &[Region]) -> Option<Region> {
        candidates.iter().copied().min_by_key(|c| self.one_way_ms(*c))
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Region::EastAsia => "east-asia",
            Region::SoutheastAsia => "southeast-asia",
            Region::SouthAsia => "south-asia",
            Region::Europe => "europe",
            Region::NorthAmerica => "north-america",
            Region::SouthAmerica => "south-america",
            Region::Oceania => "oceania",
            Region::Africa => "africa",
        };
        f.write_str(name)
    }
}

/// Result of [`min_cut_partition`]: a shard assignment for every node plus
/// the derived conservative lookahead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Shard index per node (`0..shards`).
    pub shard_of: Vec<u32>,
    /// Minimum weight over edges whose endpoints land in different shards —
    /// the conservative lookahead in ns. `u64::MAX` when no edge crosses a
    /// shard boundary (disconnected shards can run unboundedly far apart).
    pub lookahead_ns: u64,
    /// Number of non-empty shards actually produced (`<= shards` requested).
    pub shards: usize,
}

/// Deterministically partitions an undirected weighted graph into at most
/// `shards` groups, cutting only the cheapest edges.
///
/// The heuristic raises a latency threshold `T` through the distinct edge
/// weights and merges every edge with weight `< T`; the largest `T` that
/// still leaves at least `shards` connected components wins (mirroring the
/// blueprint's campus/cloud split, where intra-room links are orders of
/// magnitude cheaper than the WAN). Components are then packed onto shards
/// balanced by node count — largest first, ties toward the smaller minimum
/// node id, each placed on the lightest shard.
///
/// `edges` are `(a, b, weight_ns)` and are treated as undirected; duplicate
/// pairs keep their minimum weight. Nodes with no edges form their own
/// components. The result is a pure function of the inputs.
///
/// Every node counts as one unit of load; use
/// [`min_cut_partition_weighted`] to balance by expected event rate instead.
pub fn min_cut_partition(node_count: usize, edges: &[(u32, u32, u64)], shards: usize) -> Partition {
    min_cut_partition_weighted(node_count, edges, shards, &[])
}

/// [`min_cut_partition`] with per-node load weights: components are packed
/// onto shards balancing the *sum of member weights* rather than the member
/// count, so a few high-rate nodes (a cloud relay, a pooled-population
/// flyweight standing in for thousands of clients) do not pile onto one
/// shard alongside swarms of light leaves.
///
/// `weights[i]` is the relative expected event rate of node `i`; only ratios
/// matter. An empty slice (or one shorter than `node_count`) falls back to
/// weight 1 for the missing nodes, making the unweighted function a special
/// case. The cut itself (which edges are severed) is unchanged — weights
/// influence packing only, so the derived lookahead characteristics stay
/// driven by link latency.
pub fn min_cut_partition_weighted(
    node_count: usize,
    edges: &[(u32, u32, u64)],
    shards: usize,
    weights: &[u64],
) -> Partition {
    struct Dsu(Vec<u32>);
    impl Dsu {
        fn find(&mut self, x: u32) -> u32 {
            let mut root = x;
            while self.0[root as usize] != root {
                root = self.0[root as usize];
            }
            let mut cur = x;
            while self.0[cur as usize] != root {
                let next = self.0[cur as usize];
                self.0[cur as usize] = root;
                cur = next;
            }
            root
        }
        fn union(&mut self, a: u32, b: u32) -> bool {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb {
                return false;
            }
            // Root at the smaller id for determinism.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi as usize] = lo;
            true
        }
    }

    let shards = shards.max(1);
    // Undirected-ize with minimum weight per pair, sorted by weight.
    let mut undirected: std::collections::BTreeMap<(u32, u32), u64> = Default::default();
    for &(a, b, w) in edges {
        if a == b {
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        let entry = undirected.entry(key).or_insert(w);
        *entry = (*entry).min(w);
    }
    let mut sorted: Vec<((u32, u32), u64)> = undirected.into_iter().collect();
    sorted.sort_by_key(|&((a, b), w)| (w, a, b));

    // Sweep the threshold upward: after merging all edges with weight < T,
    // the component count is what a cut at T yields. Keep the largest T
    // whose count still reaches `shards` (T = infinity merges nothing more,
    // covering graphs that are disconnected outright).
    let mut dsu = Dsu((0..node_count as u32).collect());
    let mut components = node_count;
    let mut best_threshold = None;
    let mut i = 0;
    while i < sorted.len() {
        let threshold = sorted[i].1;
        if components >= shards {
            best_threshold = Some(threshold);
        }
        while i < sorted.len() && sorted[i].1 == threshold {
            let ((a, b), _) = sorted[i];
            if dsu.union(a, b) {
                components -= 1;
            }
            i += 1;
        }
    }
    if components >= shards {
        best_threshold = Some(u64::MAX);
    }

    // Rebuild at the chosen threshold and collect components.
    let mut dsu = Dsu((0..node_count as u32).collect());
    if let Some(t) = best_threshold {
        for &((a, b), w) in &sorted {
            if w < t {
                dsu.union(a, b);
            }
        }
    } else {
        // Even the full graph has fewer components than requested shards:
        // merge everything and let the packing below spread what exists.
        for &((a, b), _) in &sorted {
            dsu.union(a, b);
        }
    }
    let mut members: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for node in 0..node_count as u32 {
        members.entry(dsu.find(node)).or_default().push(node);
    }

    // Pack components onto shards, balanced by total member weight: largest
    // first (ties toward the smaller root id), each onto the lightest shard
    // (ties toward the lower shard index). With unit weights this reduces to
    // the original node-count balancing.
    let weight_of = |n: u32| weights.get(n as usize).copied().unwrap_or(1).max(1);
    let mut comps: Vec<(u64, u32, Vec<u32>)> = members
        .into_iter()
        .map(|(root, nodes)| (nodes.iter().map(|&n| weight_of(n)).sum(), root, nodes))
        .collect();
    comps.sort_by_key(|&(w, root, _)| (std::cmp::Reverse(w), root));
    let mut shard_of = vec![0u32; node_count];
    let mut load = vec![0u64; shards];
    for (w, _, nodes) in &comps {
        let lightest = (0..shards).min_by_key(|&s| (load[s], s)).expect("shards >= 1");
        load[lightest] += w;
        for &n in nodes {
            shard_of[n as usize] = lightest as u32;
        }
    }

    let lookahead_ns = sorted
        .iter()
        .filter(|((a, b), _)| shard_of[*a as usize] != shard_of[*b as usize])
        .map(|&(_, w)| w)
        .min()
        .unwrap_or(u64::MAX);
    let populated = load.iter().filter(|&&l| l > 0).count();
    Partition { shard_of, lookahead_ns, shards: populated.max(1) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matrix_is_symmetric() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(a.one_way_ms(b), b.one_way_ms(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn intra_region_is_cheapest() {
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    assert!(a.one_way_ms(a) < a.one_way_ms(b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn nearest_of_picks_self_when_available() {
        assert_eq!(Region::Europe.nearest_of(&Region::ALL), Some(Region::Europe));
        assert_eq!(Region::Europe.nearest_of(&[]), None);
    }

    #[test]
    fn nearest_of_is_sensible_for_remote_learners() {
        // A South American learner with servers only in NA and EU goes to NA.
        let got = Region::SouthAmerica.nearest_of(&[Region::NorthAmerica, Region::Europe]);
        assert_eq!(got, Some(Region::NorthAmerica));
    }

    #[test]
    fn link_class_presets_are_ordered_by_delay() {
        let wired = LinkClass::WiredLan.config().delay();
        let wifi = LinkClass::Wifi.config().delay();
        let campus = LinkClass::CampusBackbone.config().delay();
        let cell = LinkClass::CellularAccess.config().delay();
        assert!(wired < wifi && wifi < campus && campus < cell);
    }

    #[test]
    fn presets_have_finite_bandwidth_and_queues() {
        for class in [
            LinkClass::Wifi,
            LinkClass::WiredLan,
            LinkClass::CampusBackbone,
            LinkClass::MetroWan,
            LinkClass::ResidentialAccess,
            LinkClass::CellularAccess,
        ] {
            let cfg = class.config();
            assert!(cfg.bandwidth_bps().is_some(), "{class:?}");
            assert!(cfg.queue_capacity_bytes().is_some(), "{class:?}");
        }
    }

    #[test]
    fn backbone_delay_matches_matrix() {
        let cfg = Region::EastAsia.backbone_to(Region::Europe);
        assert_eq!(cfg.delay(), SimDuration::from_millis(90));
    }

    #[test]
    fn partition_cuts_the_expensive_edges() {
        // Two 3-node cliques at 1 ms joined by one 50 ms WAN edge.
        let ms = 1_000_000;
        let edges = vec![
            (0, 1, ms),
            (1, 2, ms),
            (0, 2, ms),
            (3, 4, ms),
            (4, 5, ms),
            (3, 5, ms),
            (2, 3, 50 * ms),
        ];
        let p = min_cut_partition(6, &edges, 2);
        assert_eq!(p.shards, 2);
        assert_eq!(p.lookahead_ns, 50 * ms);
        assert_eq!(p.shard_of[0], p.shard_of[1]);
        assert_eq!(p.shard_of[1], p.shard_of[2]);
        assert_eq!(p.shard_of[3], p.shard_of[4]);
        assert_eq!(p.shard_of[4], p.shard_of[5]);
        assert_ne!(p.shard_of[0], p.shard_of[3]);
    }

    #[test]
    fn partition_balances_many_components_onto_few_shards() {
        // Six isolated pairs at 1 ms, pairwise joined at 20 ms.
        let ms = 1_000_000;
        let mut edges = Vec::new();
        for pair in 0u32..6 {
            edges.push((2 * pair, 2 * pair + 1, ms));
        }
        for pair in 0u32..5 {
            edges.push((2 * pair, 2 * pair + 2, 20 * ms));
        }
        let p = min_cut_partition(12, &edges, 4);
        assert_eq!(p.shards, 4);
        assert_eq!(p.lookahead_ns, 20 * ms);
        let mut load = [0usize; 4];
        for &s in &p.shard_of {
            load[s as usize] += 1;
        }
        assert_eq!(load, [4, 4, 2, 2], "six pairs pack 2/2/1/1 components");
    }

    #[test]
    fn partition_handles_degenerate_graphs() {
        // Fewer components than shards: everything merges into one shard.
        let p = min_cut_partition(2, &[(0, 1, 5)], 4);
        assert_eq!(p.shards, 1);
        assert_eq!(p.lookahead_ns, u64::MAX, "no crossing edges remain");
        // No edges at all: four singletons spread across shards.
        let p = min_cut_partition(4, &[], 4);
        assert_eq!(p.shards, 4);
        assert_eq!(p.lookahead_ns, u64::MAX);
        // All-equal weights cannot be cut above zero cost but still split.
        let p = min_cut_partition(4, &[(0, 1, 7), (1, 2, 7), (2, 3, 7)], 2);
        assert!(p.shards >= 2);
        assert_eq!(p.lookahead_ns, 7);
        // Deterministic across calls.
        let a = min_cut_partition(4, &[(0, 1, 7), (1, 2, 7), (2, 3, 7)], 2);
        assert_eq!(a, p);
    }
}
