//! Link presets and geography for blueprint topologies.
//!
//! The blueprint's Figure 3 names four transport classes — headset WiFi,
//! wired sensor links, the inter-campus WAN, and the public Internet reaching
//! remote learners — and its scalability discussion (§3.3) requires a
//! worldwide user population with regional servers. [`LinkClass`] provides
//! calibrated [`LinkConfig`] presets for the former; [`Region`] provides an
//! inter-region one-way latency matrix for the latter.

use serde::{Deserialize, Serialize};

use crate::link::{LinkConfig, LossModel};
use crate::time::SimDuration;

/// Calibrated presets for the transport classes in the blueprint.
///
/// # Examples
///
/// ```
/// use metaclass_netsim::LinkClass;
///
/// let wifi = LinkClass::Wifi.config();
/// let wired = LinkClass::WiredLan.config();
/// assert!(wifi.delay() > wired.delay());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Classroom WiFi between a headset and the local edge server
    /// (802.11ac-class: ~2 ms, jittery, occasionally lossy).
    Wifi,
    /// Wired LAN between room sensors and the local edge server.
    WiredLan,
    /// Dedicated inter-campus backbone (e.g. HKUST CWB ↔ GZ, ~7.5 ms one-way).
    CampusBackbone,
    /// Edge server to a nearby cloud (metro distance).
    MetroWan,
    /// Residential last-mile access for remote learners.
    ResidentialAccess,
    /// Congested/cellular access: higher jitter and burst loss.
    CellularAccess,
}

impl LinkClass {
    /// The calibrated link configuration for this class.
    pub fn config(self) -> LinkConfig {
        match self {
            LinkClass::Wifi => LinkConfig::new(SimDuration::from_millis(2))
                .with_jitter(SimDuration::from_micros(1_500))
                .with_loss(LossModel::Iid { p: 0.005 })
                .with_bandwidth_bps(50_000_000)
                .with_queue_capacity_bytes(256 * 1024),
            LinkClass::WiredLan => LinkConfig::new(SimDuration::from_micros(200))
                .with_jitter(SimDuration::from_micros(50))
                .with_loss(LossModel::Iid { p: 0.0001 })
                .with_bandwidth_bps(1_000_000_000)
                .with_queue_capacity_bytes(1024 * 1024),
            LinkClass::CampusBackbone => LinkConfig::new(SimDuration::from_micros(7_500))
                .with_jitter(SimDuration::from_micros(500))
                .with_loss(LossModel::Iid { p: 0.0005 })
                .with_bandwidth_bps(1_000_000_000)
                .with_queue_capacity_bytes(4 * 1024 * 1024),
            LinkClass::MetroWan => LinkConfig::new(SimDuration::from_millis(4))
                .with_jitter(SimDuration::from_micros(800))
                .with_loss(LossModel::Iid { p: 0.0005 })
                .with_bandwidth_bps(1_000_000_000)
                .with_queue_capacity_bytes(4 * 1024 * 1024),
            LinkClass::ResidentialAccess => LinkConfig::new(SimDuration::from_millis(8))
                .with_jitter(SimDuration::from_millis(2))
                .with_loss(LossModel::Iid { p: 0.002 })
                .with_bandwidth_bps(100_000_000)
                .with_queue_capacity_bytes(512 * 1024),
            LinkClass::CellularAccess => LinkConfig::new(SimDuration::from_millis(25))
                .with_jitter(SimDuration::from_millis(8))
                .with_loss(LossModel::GilbertElliott {
                    p_good_to_bad: 0.01,
                    p_bad_to_good: 0.25,
                    loss_good: 0.001,
                    loss_bad: 0.15,
                })
                .with_bandwidth_bps(30_000_000)
                .with_queue_capacity_bytes(512 * 1024),
        }
    }
}

/// A world region hosting remote learners or servers.
///
/// Indexes into a calibrated one-way inter-region latency matrix
/// (public-Internet medians, in milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// East Asia (Hong Kong, Guangzhou, Seoul, Tokyo) — the blueprint's campuses.
    EastAsia,
    /// Southeast Asia (Singapore, Jakarta).
    SoutheastAsia,
    /// South Asia (Mumbai, Delhi).
    SouthAsia,
    /// Europe (Frankfurt, London, Cambridge).
    Europe,
    /// North America (Boston/MIT, Virginia, California).
    NorthAmerica,
    /// South America (São Paulo).
    SouthAmerica,
    /// Oceania (Sydney).
    Oceania,
    /// Africa (Johannesburg, Cairo).
    Africa,
}

impl Region {
    /// All regions, in declaration order.
    pub const ALL: [Region; 8] = [
        Region::EastAsia,
        Region::SoutheastAsia,
        Region::SouthAsia,
        Region::Europe,
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Oceania,
        Region::Africa,
    ];

    fn idx(self) -> usize {
        match self {
            Region::EastAsia => 0,
            Region::SoutheastAsia => 1,
            Region::SouthAsia => 2,
            Region::Europe => 3,
            Region::NorthAmerica => 4,
            Region::SouthAmerica => 5,
            Region::Oceania => 6,
            Region::Africa => 7,
        }
    }

    /// One-way median latency in milliseconds between region cores.
    pub fn one_way_ms(self, other: Region) -> u64 {
        // Symmetric matrix of one-way medians (ms).
        const M: [[u64; 8]; 8] = [
            //  EA  SEA  SA   EU   NA  SAm   OC   AF
            [5, 25, 45, 90, 60, 130, 55, 110],    // EastAsia
            [25, 5, 30, 85, 85, 160, 45, 95],     // SoutheastAsia
            [45, 30, 5, 65, 110, 150, 75, 80],    // SouthAsia
            [90, 85, 65, 5, 40, 95, 140, 45],     // Europe
            [60, 85, 110, 40, 5, 75, 75, 90],     // NorthAmerica
            [130, 160, 150, 95, 75, 5, 140, 120], // SouthAmerica
            [55, 45, 75, 140, 75, 140, 5, 130],   // Oceania
            [110, 95, 80, 45, 90, 120, 130, 5],   // Africa
        ];
        M[self.idx()][other.idx()]
    }

    /// A backbone link configuration between two region cores: one-way
    /// propagation from the matrix, 5% jitter, light loss.
    pub fn backbone_to(self, other: Region) -> LinkConfig {
        let ms = self.one_way_ms(other);
        LinkConfig::new(SimDuration::from_millis(ms))
            .with_jitter(SimDuration::from_millis_f64(ms as f64 * 0.05))
            .with_loss(LossModel::Iid { p: 0.0005 })
            .with_bandwidth_bps(10_000_000_000)
            .with_queue_capacity_bytes(16 * 1024 * 1024)
    }

    /// The region nearest to `self` among `candidates` (by one-way latency);
    /// `None` if `candidates` is empty. Ties break toward the earlier
    /// candidate.
    pub fn nearest_of(self, candidates: &[Region]) -> Option<Region> {
        candidates.iter().copied().min_by_key(|c| self.one_way_ms(*c))
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Region::EastAsia => "east-asia",
            Region::SoutheastAsia => "southeast-asia",
            Region::SouthAsia => "south-asia",
            Region::Europe => "europe",
            Region::NorthAmerica => "north-america",
            Region::SouthAmerica => "south-america",
            Region::Oceania => "oceania",
            Region::Africa => "africa",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matrix_is_symmetric() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(a.one_way_ms(b), b.one_way_ms(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn intra_region_is_cheapest() {
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    assert!(a.one_way_ms(a) < a.one_way_ms(b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn nearest_of_picks_self_when_available() {
        assert_eq!(Region::Europe.nearest_of(&Region::ALL), Some(Region::Europe));
        assert_eq!(Region::Europe.nearest_of(&[]), None);
    }

    #[test]
    fn nearest_of_is_sensible_for_remote_learners() {
        // A South American learner with servers only in NA and EU goes to NA.
        let got = Region::SouthAmerica.nearest_of(&[Region::NorthAmerica, Region::Europe]);
        assert_eq!(got, Some(Region::NorthAmerica));
    }

    #[test]
    fn link_class_presets_are_ordered_by_delay() {
        let wired = LinkClass::WiredLan.config().delay();
        let wifi = LinkClass::Wifi.config().delay();
        let campus = LinkClass::CampusBackbone.config().delay();
        let cell = LinkClass::CellularAccess.config().delay();
        assert!(wired < wifi && wifi < campus && campus < cell);
    }

    #[test]
    fn presets_have_finite_bandwidth_and_queues() {
        for class in [
            LinkClass::Wifi,
            LinkClass::WiredLan,
            LinkClass::CampusBackbone,
            LinkClass::MetroWan,
            LinkClass::ResidentialAccess,
            LinkClass::CellularAccess,
        ] {
            let cfg = class.config();
            assert!(cfg.bandwidth_bps().is_some(), "{class:?}");
            assert!(cfg.queue_capacity_bytes().is_some(), "{class:?}");
        }
    }

    #[test]
    fn backbone_delay_matches_matrix() {
        let cfg = Region::EastAsia.backbone_to(Region::Europe);
        assert_eq!(cfg.delay(), SimDuration::from_millis(90));
    }
}
