//! Scheduler microbenchmarks: the timer wheel against the binary-heap
//! baseline it replaced, plus whole-engine fan-out and fault-plan runs.
//!
//! The `sched_*` groups drive the two [`EventQueue`] implementations with
//! the engine's real access patterns; `engine/*` benches run a complete
//! [`Simulation`] so dispatch batching and op pooling are measured too.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use metaclass_netsim::sched::{BinaryHeapQueue, EventQueue, TimerWheel};
use metaclass_netsim::{
    Context, DetRng, FaultPlan, LinkConfig, Node, NodeId, SimDuration, SimTime, Simulation,
};

/// Deterministic event-time pattern mixing slot-local, horizon-scale, and
/// far-future delays, mirroring link delays, retransmit timers, and session
/// schedules.
fn delay_pattern(rng: &mut DetRng, i: usize) -> u64 {
    match i % 8 {
        0 => 0,                                            // same-instant (loopback)
        1..=4 => rng.range_u64(1, 1_000_000),              // sub-slot jitter
        5 | 6 => rng.range_u64(1_000_000, 200_000_000),    // within the wheel horizon
        _ => rng.range_u64(1_000_000_000, 10_000_000_000), // overflow heap
    }
}

/// Fill-then-drain: `n` pushes followed by `n` pops.
fn fill_drain<Q: EventQueue<u64>>(mut queue: Q, times: &[u64]) -> u64 {
    for (seq, &t) in times.iter().enumerate() {
        queue.push(SimTime::from_nanos(t), seq as u64, seq as u64);
    }
    let mut acc = 0u64;
    while let Some((_, _, v)) = queue.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

/// Steady-state: keep ~`pending` events in flight; each pop schedules a
/// follow-up relative to the popped time — the engine's actual usage.
fn steady_state<Q: EventQueue<u64>>(mut queue: Q, pending: usize, ops: usize) -> u64 {
    let mut rng = DetRng::new(7);
    let mut seq = 0u64;
    for i in 0..pending {
        queue.push(SimTime::from_nanos(delay_pattern(&mut rng, i)), seq, seq);
        seq += 1;
    }
    let mut acc = 0u64;
    for i in 0..ops {
        let (at, _, v) = queue.pop().expect("queue stays non-empty");
        acc = acc.wrapping_add(v);
        let next = at.as_nanos() + delay_pattern(&mut rng, i);
        queue.push(SimTime::from_nanos(next), seq, seq);
        seq += 1;
    }
    acc
}

/// Streaming fan-out: `bursts` broadcast instants 11 ms apart, each pushing
/// `width` same-time events and draining the previous burst — the pattern
/// E1/E3 generate at every avatar tick, where a broadcast is scheduled one
/// link delay ahead of delivery.
fn fanout_stream<Q: EventQueue<u64>>(mut queue: Q, bursts: usize, width: usize) -> u64 {
    let mut seq = 0u64;
    let mut acc = 0u64;
    for b in 0..bursts {
        let t = SimTime::from_nanos((b as u64) * 11_000_000);
        for _ in 0..width {
            queue.push(t, seq, seq);
            seq += 1;
        }
        for _ in 0..width {
            let (_, _, v) = queue.pop().expect("burst just pushed");
            acc = acc.wrapping_add(v);
        }
    }
    acc
}

/// Active-batch churn: all events stay inside the live wheel slot, so every
/// push after warm-up takes the sorted-active insert (a binary search over
/// the dense `(time, seq)` key lane) and every pop walks the key/item deques
/// in lockstep — exactly the paths the struct-of-arrays split optimizes.
/// The heap row is the AoS baseline for the same workload.
fn soa_active_churn<Q: EventQueue<u64>>(mut queue: Q, pending: usize, ops: usize) -> u64 {
    let mut rng = DetRng::new(11);
    let mut seq = 0u64;
    for _ in 0..pending {
        queue.push(SimTime::from_nanos(rng.range_u64(0, 1 << 14)), seq, seq);
        seq += 1;
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let (at, _, v) = queue.pop().expect("queue stays non-empty");
        acc = acc.wrapping_add(v);
        // Follow-ups land within ~16 µs of the popped instant, far inside
        // the ~1 ms slot width, so they join the already-sorted batch.
        queue.push(SimTime::from_nanos(at.as_nanos() + rng.range_u64(1, 1 << 14)), seq, seq);
        seq += 1;
    }
    acc
}

fn sched_throughput(c: &mut Criterion) {
    let mut rng = DetRng::new(42);
    let mixed: Vec<u64> = (0..10_000).map(|i| delay_pattern(&mut rng, i)).collect();

    let mut g = c.benchmark_group("sched_fill_drain");
    g.throughput(Throughput::Elements(mixed.len() as u64));
    g.bench_function("wheel/mixed_10k", |b| b.iter(|| fill_drain(TimerWheel::new(), &mixed)));
    g.bench_function("heap/mixed_10k", |b| b.iter(|| fill_drain(BinaryHeapQueue::new(), &mixed)));
    g.finish();

    let mut g = c.benchmark_group("sched_fanout");
    g.throughput(Throughput::Elements(100 * 100));
    g.bench_function("wheel/stream_100x100", |b| {
        b.iter(|| fanout_stream(TimerWheel::new(), 100, 100))
    });
    g.bench_function("heap/stream_100x100", |b| {
        b.iter(|| fanout_stream(BinaryHeapQueue::new(), 100, 100))
    });
    g.finish();

    let mut g = c.benchmark_group("sched_soa_active");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("wheel/in_slot_churn_20k", |b| {
        b.iter(|| soa_active_churn(TimerWheel::new(), 256, 20_000))
    });
    g.bench_function("heap/in_slot_churn_20k", |b| {
        b.iter(|| soa_active_churn(BinaryHeapQueue::new(), 256, 20_000))
    });
    g.finish();

    let mut g = c.benchmark_group("sched_steady");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("wheel/pending1k_ops20k", |b| {
        b.iter(|| steady_state(TimerWheel::new(), 1_000, 20_000))
    });
    g.bench_function("heap/pending1k_ops20k", |b| {
        b.iter(|| steady_state(BinaryHeapQueue::new(), 1_000, 20_000))
    });
    g.finish();
}

/// A hub node that broadcasts a tick to every spoke on a periodic timer.
struct Hub {
    spokes: Vec<NodeId>,
    ticks_left: u32,
}

impl Node<u64> for Hub {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.set_timer(SimDuration::from_millis(11), 1);
    }
    fn on_message(&mut self, _: &mut Context<'_, u64>, _: NodeId, _: u64) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _: metaclass_netsim::Timer) {
        for &s in &self.spokes {
            ctx.send(s, 1, 256);
        }
        if self.ticks_left > 0 {
            self.ticks_left -= 1;
            ctx.set_timer(SimDuration::from_millis(11), 1);
        }
    }
}

/// A spoke that acks every message back to its sender.
struct Spoke;
impl Node<u64> for Spoke {
    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
        ctx.send(from, msg, 64);
    }
}

fn build_fanout_sim(spokes: u32) -> Simulation<u64> {
    let mut sim = Simulation::new(9);
    let ids: Vec<NodeId> = (0..spokes).map(|i| sim.add_node(format!("spoke{i}"), Spoke)).collect();
    let hub = sim.add_node("hub", Hub { spokes: ids.clone(), ticks_left: 90 });
    for id in ids {
        // Identical delays so every broadcast arrives as one same-instant
        // burst — the dispatch-batching fast path.
        sim.connect(hub, id, LinkConfig::new(SimDuration::from_millis(5)));
    }
    sim
}

fn engine_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("fanout_64spokes_90ticks", |b| {
        b.iter_batched(
            || build_fanout_sim(64),
            |mut sim| {
                sim.run_until_idle();
                sim.events_processed()
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("fanout_with_fault_plan", |b| {
        b.iter_batched(
            || {
                let mut sim = build_fanout_sim(64);
                let mut plan = FaultPlan::new();
                // Periodic flaps of one hub link: fault events interleave
                // with the broadcast bursts.
                for k in 0..20u64 {
                    let down = SimTime::from_millis(20 + k * 40);
                    let up = SimTime::from_millis(40 + k * 40);
                    plan = plan.link_flap(NodeId::from_index(64), NodeId::from_index(0), down, up);
                }
                sim.apply_fault_plan(plan);
                sim
            },
            |mut sim| {
                sim.run_until_idle();
                sim.events_processed()
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, sched_throughput, engine_fanout);
criterion_main!(benches);
