//! Criterion microbenchmarks for [`PopulationTimeline`] expansion: timeline
//! generation across the three arrival processes, tracer splitting, and the
//! drain cursor. The flyweight-pool path expands these timelines for every
//! pooled region at session build time, so generation cost is start-up
//! latency for million-user scenario runs and is tracked in isolation here
//! rather than only through the end-to-end engine benches.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use metaclass_netsim::{
    ChurnModel, DetRng, PopulationProfile, PopulationTimeline, SimDuration, SimTime,
};

const HORIZON: SimTime = SimTime::from_secs(2_700); // a 45-minute class

fn profiles() -> Vec<(&'static str, PopulationProfile)> {
    let churn = ChurnModel { leave_chance: 0.25, min_stay: SimDuration::from_secs(60) };
    vec![
        (
            "flash_crowd",
            PopulationProfile::flash_crowd(SimTime::from_secs(10), SimDuration::from_secs(120)),
        ),
        (
            "poisson_churn",
            PopulationProfile::poisson(SimTime::ZERO, SimDuration::from_millis(25))
                .with_churn(churn),
        ),
    ]
}

fn population_generate(c: &mut Criterion) {
    for members in [10_000u64, 100_000] {
        let mut g = c.benchmark_group(format!("population_generate_{members}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(members));
        for (label, profile) in profiles() {
            g.bench_function(label, |b| {
                b.iter_batched(
                    || DetRng::new(42),
                    |mut rng| PopulationTimeline::generate(&profile, members, HORIZON, &mut rng),
                    BatchSize::PerIteration,
                )
            });
        }
        g.finish();
    }
}

fn population_split_and_drain(c: &mut Criterion) {
    let profile = profiles().remove(1).1;
    let mut rng = DetRng::new(42);
    let full = PopulationTimeline::generate(&profile, 100_000, HORIZON, &mut rng);

    let mut g = c.benchmark_group("population_expand");
    g.sample_size(10);
    g.throughput(Throughput::Elements(full.members()));
    g.bench_function("split_tracers_1k_of_100k", |b| b.iter(|| full.split_tracers(1_000)));
    g.bench_function("drain_full_session_100k", |b| {
        b.iter_batched(
            || full.clone(),
            |mut t| {
                // One drain per simulated second — the pool node's cadence.
                let mut acc = (0u64, 0u64);
                for s in 0..=HORIZON.as_nanos() / 1_000_000_000 {
                    let (j, l) = t.drain_until(SimTime::from_secs(s));
                    acc.0 += j;
                    acc.1 += l;
                }
                acc
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, population_generate, population_split_and_drain);
criterion_main!(benches);
