//! Property test: the timer wheel's pop order is byte-for-byte the binary
//! heap's pop order for arbitrary legal schedules — including same-timestamp
//! ties (broken by seq), sub-slot jitter, horizon-edge times, and far-future
//! events that overflow the wheel into its fallback heap.

use metaclass_netsim::sched::{BinaryHeapQueue, EventQueue, TimerWheel};
use metaclass_netsim::SimTime;
use proptest::prelude::*;

/// Interprets a delta list as an interleaved push/pop workload obeying the
/// queue contract (never scheduling before the last popped event), driving
/// both implementations in lockstep and comparing every popped triple.
fn run_workload(deltas: &[u64], pop_stride: usize) {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
    // Lower bound for future pushes: the last popped time.
    let mut clock = 0u64;
    for (i, &delta) in deltas.iter().enumerate() {
        let seq = i as u64;
        let at = SimTime::from_nanos(clock.saturating_add(delta));
        wheel.push(at, seq, seq);
        heap.push(at, seq, seq);
        if i % pop_stride == pop_stride - 1 {
            let got = wheel.pop();
            let want = heap.pop();
            assert_eq!(got, want, "divergence after {} pushes", i + 1);
            if let Some((t, _, _)) = want {
                clock = t.as_nanos();
            }
        }
        assert_eq!(wheel.len(), heap.len());
    }
    loop {
        assert_eq!(wheel.peek_key(), heap.peek_key());
        let got = wheel.pop();
        let want = heap.pop();
        assert_eq!(got, want, "divergence during final drain");
        if want.is_none() {
            break;
        }
    }
}

/// Delta distribution spanning every wheel regime: same-instant ties (0),
/// sub-slot jitter, multi-slot delays, the ~268 ms horizon edge, and
/// far-future overflow.
fn delta_strategy() -> impl Strategy<Value = u64> {
    (0u64..10, 0u64..10_000_000_000).prop_map(|(bucket, raw)| match bucket {
        0 | 1 => 0,                               // tie with a pending event
        2..=4 => raw % 1_000_000,                 // within one slot
        5 | 6 => raw % 250_000_000,               // up to just inside/outside horizon
        7 => 268_000_000 + raw % 10_000_000,      // straddles the horizon edge
        _ => 1_000_000_000 + raw % 9_000_000_000, // deep overflow
    })
}

proptest! {
    #[test]
    fn wheel_pop_order_equals_heap_pop_order(
        deltas in proptest::collection::vec(delta_strategy(), 1..300),
        pop_stride in 1usize..5,
    ) {
        run_workload(&deltas, pop_stride);
    }

    #[test]
    fn pure_fill_then_drain_matches(
        deltas in proptest::collection::vec(delta_strategy(), 1..300),
    ) {
        // No interleaved pops: everything lands relative to t = 0, then one
        // long drain (the `run_until_idle` shape).
        run_workload(&deltas, usize::MAX);
    }
}
