//! Property tests for [`FaultPlan::into_sorted_events`]: the sort is stable
//! (ties resolve by insertion order), total (every pushed event survives),
//! and overlapping `partition_window`/`link_flap` windows leave links in the
//! state the engine's orthogonal admin/partition semantics prescribe.

use metaclass_netsim::{
    Context, FaultAction, FaultPlan, LinkConfig, Node, NodeId, SimDuration, SimTime, Simulation,
};
use proptest::prelude::*;

fn n(i: usize) -> NodeId {
    NodeId::from_index(i)
}

/// Builds a plan whose times come from a tiny set (forcing plenty of ties),
/// each action tagged with a unique node index so the original insertion
/// position is recoverable from the sorted output.
fn tagged_plan(times: &[u64]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for (i, &t) in times.iter().enumerate() {
        // CrashNode{node: i} is a pure tag here; the plan is never executed.
        plan = plan.at(SimTime::from_millis(t), FaultAction::CrashNode { node: n(i) });
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sorted output is a permutation of the input, non-decreasing in time,
    /// and events at equal times keep their insertion order.
    #[test]
    fn prop_sort_is_stable_and_total(times in proptest::collection::vec(0u64..4, 0..24)) {
        let sorted = tagged_plan(&times).into_sorted_events();
        prop_assert_eq!(sorted.len(), times.len());
        let mut last = (SimTime::ZERO, 0usize);
        let mut seen = vec![false; times.len()];
        for (at, action) in &sorted {
            let FaultAction::CrashNode { node } = action else { panic!("unexpected action") };
            let idx = node.index();
            prop_assert!(!seen[idx], "event {} appeared twice", idx);
            seen[idx] = true;
            prop_assert_eq!(*at, SimTime::from_millis(times[idx]), "event kept its time");
            // Total order: time strictly grows, or insertion index grows.
            prop_assert!(
                *at > last.0 || (*at == last.0 && idx >= last.1),
                "tie at {} ns broke insertion order: {} after {}",
                at.as_nanos(), idx, last.1
            );
            last = (*at, idx);
        }
        prop_assert!(seen.iter().all(|&s| s), "every pushed event survives the sort");
    }
}

/// A quiet 3-node triangle (0-1, 1-2, 0-2) for executing fault plans.
fn triangle() -> Simulation<()> {
    struct Idle;
    impl Node<()> for Idle {
        fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {}
    }
    let mut sim = Simulation::new(7);
    let a = sim.add_node("a", Idle);
    let b = sim.add_node("b", Idle);
    let c = sim.add_node("c", Idle);
    let cfg = LinkConfig::new(SimDuration::from_millis(5));
    sim.connect(a, b, cfg);
    sim.connect(b, c, cfg);
    sim.connect(a, c, cfg);
    sim
}

fn available(sim: &Simulation<()>, a: NodeId, b: NodeId) -> bool {
    let id = sim.link_between(a, b).expect("triangle link exists");
    sim.link(id).is_available()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Overlapping partition windows and link flaps compose orthogonally:
    /// while the partition is active its severed links are unavailable no
    /// matter what the flap did; once both windows close, every link is back
    /// (Heal restores partition-severed links, LinkUp restores admin state).
    #[test]
    fn prop_overlapping_partition_and_flap_end_state(
        // Partition window [p0, p0+pd), flap window [f0, f0+fd) on link 0-1,
        // all within 0..600 ms so every overlap order is exercised.
        p0 in 0u64..300, pd in 1u64..300,
        f0 in 0u64..300, fd in 1u64..300,
        partition_built_first in any::<bool>(),
    ) {
        let (a, b, c) = (n(0), n(1), n(2));
        let p_from = SimTime::from_millis(p0);
        let p_until = SimTime::from_millis(p0 + pd);
        let f_from = SimTime::from_millis(f0);
        let f_until = SimTime::from_millis(f0 + fd);

        let groups: &[&[NodeId]] = &[&[a], &[b, c]];
        let plan = if partition_built_first {
            FaultPlan::new()
                .partition_window(groups, p_from, p_until)
                .link_flap(a, b, f_from, f_until)
        } else {
            FaultPlan::new()
                .link_flap(a, b, f_from, f_until)
                .partition_window(groups, p_from, p_until)
        };

        // Mid-flight: stop 1 ns before the earliest window end; whatever is
        // still open must be visible in link availability.
        let first_end = p_until.min(f_until);
        let probe_at = SimTime::from_nanos(first_end.as_nanos() - 1);
        let mut sim = triangle();
        sim.apply_fault_plan(plan.clone());
        sim.run_until(probe_at);
        if probe_at >= p_from {
            prop_assert!(!available(&sim, a, b), "0-1 severed while partition active");
            prop_assert!(!available(&sim, a, c), "0-2 severed while partition active");
            prop_assert!(available(&sim, b, c), "1-2 in one group stays up");
        } else if probe_at >= f_from {
            prop_assert!(!available(&sim, a, b), "0-1 admin-down during the flap");
            prop_assert!(available(&sim, b, c));
            prop_assert!(available(&sim, a, c));
        }

        // Past both ends: full recovery regardless of overlap or build order.
        sim.run_until(SimTime::from_millis(700));
        prop_assert!(available(&sim, a, b), "0-1 must recover after flap-up and heal");
        prop_assert!(available(&sim, b, c), "1-2 must recover after heal");
        prop_assert!(available(&sim, a, c), "0-2 must recover after heal");
    }
}
