//! Property test: the serial and sharded executors are byte-identical on
//! random topologies, fault plans, and seeds.
//!
//! Each case builds a random multi-campus topology (stars of varying size
//! joined by a chain of slow WAN links — the shape the partitioner is meant
//! to cut), loads it with chatty timer-driven nodes, overlays a random fault
//! plan (link flaps, latency spikes, partitions, crash/restart), and runs it
//! to a deadline under the serial engine and under sharded engines at 2 and
//! 4 shards. Trace fingerprints, the full metrics snapshot (minus the
//! `engine.` namespace, which describes the executor itself), the event
//! count, and the final clock must all agree exactly.

use metaclass_netsim::{
    Context, EngineMode, FaultPlan, LinkConfig, LossModel, MetricsSnapshot, Node, NodeId,
    SimDuration, SimTime, Simulation, Timer,
};
use proptest::prelude::*;

/// A timer-driven node: every period it sends a burst toward its peer, and
/// echoes shrinking replies to whatever it hears. Exercises sends, multi-hop
/// routing, timers, RNG draws, and crash resets.
struct Chatter {
    peer: NodeId,
    period: SimDuration,
    rounds: u32,
    fired: u32,
    received: u64,
}

impl Node<u64> for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.fired = 0;
        ctx.set_timer(self.period, 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
        self.received = self.received.wrapping_add(msg);
        if msg > 1 {
            ctx.send(from, msg - 1, 150);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _t: Timer) {
        self.fired += 1;
        let burst = ctx.rng().range_u64(1, 4);
        ctx.send(self.peer, burst, 300);
        if self.fired < self.rounds {
            ctx.set_timer(self.period, 1);
        }
    }
    fn on_crash(&mut self) {
        self.received = 0;
    }
}

#[derive(Debug, Clone)]
struct Topo {
    /// Nodes per campus; length = campus count.
    campuses: Vec<u8>,
    /// Intra-campus one-way delay in microseconds.
    lan_us: u64,
    /// Inter-campus one-way delay in milliseconds (the lookahead source).
    wan_ms: u64,
    /// Per-link i.i.d. loss probability.
    loss: f64,
    /// Jitter as a fraction of the WAN delay.
    jitter_us: u64,
}

#[derive(Debug, Clone)]
struct Faults {
    flap_wan: bool,
    spike_wan: bool,
    partition: bool,
    crash_node: bool,
}

fn build(seed: u64, topo: &Topo) -> (Simulation<u64>, Vec<NodeId>, Vec<NodeId>) {
    let mut sim = Simulation::new(seed);
    sim.set_engine(EngineMode::Serial);
    let mut gateways = Vec::new();
    let mut all = Vec::new();
    for (c, &size) in topo.campuses.iter().enumerate() {
        let first = all.len();
        for i in 0..size as usize {
            // Every node initially points at its campus gateway; gateways
            // are re-pointed at the next campus below.
            let peer = first;
            let id = sim.add_node(
                format!("c{c}n{i}"),
                Chatter {
                    peer: NodeId::from_index(peer),
                    period: SimDuration::from_millis(2 + (i as u64 % 5)),
                    rounds: 10,
                    fired: 0,
                    received: 0,
                },
            );
            all.push(id);
        }
        gateways.push(all[first]);
    }
    // Point each gateway at the next gateway (ring-free chain) so traffic
    // actually crosses the WAN cut.
    for c in 0..gateways.len() {
        let peer = gateways[(c + 1) % gateways.len()];
        let gw = gateways[c];
        sim.node_as_mut::<Chatter>(gw).unwrap().peer = peer;
    }
    let lan = LinkConfig::new(SimDuration::from_micros(topo.lan_us))
        .with_jitter(SimDuration::from_micros(topo.lan_us / 4))
        .with_loss(LossModel::Iid { p: topo.loss });
    let mut idx = 0;
    for &size in &topo.campuses {
        let gw = all[idx];
        for i in 1..size as usize {
            sim.connect(gw, all[idx + i], lan);
        }
        idx += size as usize;
    }
    let wan = LinkConfig::new(SimDuration::from_millis(topo.wan_ms))
        .with_jitter(SimDuration::from_micros(topo.jitter_us))
        .with_loss(LossModel::Iid { p: topo.loss * 2.0 });
    for c in 0..gateways.len() - 1 {
        sim.connect(gateways[c], gateways[c + 1], wan);
    }
    (sim, gateways, all)
}

fn fault_plan(f: &Faults, gateways: &[NodeId], all: &[NodeId], campuses: &[u8]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let (a, b) = (gateways[0], gateways[1]);
    if f.flap_wan {
        plan = plan.link_flap(a, b, SimTime::from_millis(40), SimTime::from_millis(90));
    }
    if f.spike_wan {
        plan = plan.latency_spike(
            a,
            b,
            SimTime::from_millis(100),
            SimTime::from_millis(160),
            SimDuration::from_millis(7),
        );
    }
    if f.partition {
        let first: Vec<NodeId> = all[..campuses[0] as usize].to_vec();
        let rest: Vec<NodeId> = all[campuses[0] as usize..].to_vec();
        plan = plan.partition_window(
            &[&first, &rest],
            SimTime::from_millis(170),
            SimTime::from_millis(220),
        );
    }
    if f.crash_node {
        // Crash the second campus's gateway: mid-run restart re-arms timers.
        plan = plan.crash(gateways[1], SimTime::from_millis(60), Some(SimTime::from_millis(140)));
    }
    plan
}

fn run(
    seed: u64,
    topo: &Topo,
    faults: &Faults,
    mode: EngineMode,
) -> (u64, MetricsSnapshot, u64, SimTime, u64) {
    let (mut sim, gateways, all) = build(seed, topo);
    sim.set_engine(mode);
    sim.enable_trace(1 << 20);
    sim.apply_fault_plan(fault_plan(faults, &gateways, &all, &topo.campuses));
    sim.run_until(SimTime::from_millis(260));
    (
        sim.trace().unwrap().fingerprint(),
        sim.metrics().snapshot().without_prefix("engine."),
        sim.events_processed(),
        sim.time(),
        sim.metrics().counter_value("engine.fallback_serial"),
    )
}

fn topo_strategy() -> impl Strategy<Value = Topo> {
    (
        (proptest::collection::vec(2u8..5, 2..4), 50u64..2_000),
        (10u64..60, 0.0f64..0.08, 0u64..3_000),
    )
        .prop_map(|((campuses, lan_us), (wan_ms, loss, jitter_us))| Topo {
            campuses,
            lan_us,
            wan_ms,
            loss,
            jitter_us,
        })
}

fn faults_strategy() -> impl Strategy<Value = Faults> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(flap_wan, spike_wan, partition, crash_node)| Faults {
            flap_wan,
            spike_wan,
            partition,
            crash_node,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_equals_serial(
        seed in 0u64..1_000_000,
        topo in topo_strategy(),
        faults in faults_strategy(),
    ) {
        let serial = run(seed, &topo, &faults, EngineMode::Serial);
        prop_assert_eq!(serial.4, 0, "serial runs never count a fallback");
        for shards in [2usize, 4] {
            let sharded = run(seed, &topo, &faults, EngineMode::Sharded { shards });
            prop_assert_eq!(serial.0, sharded.0, "trace fingerprint ({} shards)", shards);
            prop_assert_eq!(&serial.1, &sharded.1, "metrics ({} shards)", shards);
            prop_assert_eq!(serial.2, sharded.2, "event count ({} shards)", shards);
            prop_assert_eq!(serial.3, sharded.3, "final clock ({} shards)", shards);
            // Identity must come from genuinely sharded execution, not from
            // a silent serial fallback masquerading as agreement.
            prop_assert_eq!(sharded.4, 0, "unexpected serial fallback ({} shards)", shards);
        }
    }
}

/// A topology the partitioner cannot cut (one campus, zero-lookahead
/// links): the sharded engine must fall back to serial — *visibly* — and
/// still agree with the serial engine on everything except the fallback
/// record itself.
#[test]
fn fallback_is_announced_and_otherwise_byte_identical() {
    let topo = Topo { campuses: vec![4], lan_us: 0, wan_ms: 0, loss: 0.0, jitter_us: 0 };

    let build_one = |mode: EngineMode| {
        let (mut sim, _gw, _all) = build(7, &topo);
        sim.set_engine(mode);
        sim.enable_trace(1 << 16);
        sim.run_until(SimTime::from_millis(260));
        sim
    };
    let serial = build_one(EngineMode::Serial);
    let sharded = build_one(EngineMode::Sharded { shards: 2 });

    // The fallback is signalled in both the metric and the trace.
    assert_eq!(serial.metrics().counter_value("engine.fallback_serial"), 0);
    assert!(sharded.metrics().counter_value("engine.fallback_serial") > 0);
    let fallback_records = |sim: &Simulation<u64>| {
        sim.trace()
            .unwrap()
            .events()
            .iter()
            .filter(|e| e.kind == metaclass_netsim::TraceKind::EngineFallback)
            .count()
    };
    assert_eq!(fallback_records(&serial), 0);
    assert_eq!(
        fallback_records(&sharded) as u64,
        sharded.metrics().counter_value("engine.fallback_serial"),
        "every counted fallback leaves a trace record"
    );

    // Everything but the executor's own namespace and trace records agrees.
    assert_eq!(
        serial.metrics().snapshot().without_prefix("engine."),
        sharded.metrics().snapshot().without_prefix("engine."),
    );
    assert_eq!(serial.events_processed(), sharded.events_processed());
    assert_eq!(serial.time(), sharded.time());
    let world_events = |sim: &Simulation<u64>| {
        sim.trace()
            .unwrap()
            .events()
            .iter()
            .filter(|e| e.kind != metaclass_netsim::TraceKind::EngineFallback)
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(world_events(&serial), world_events(&sharded));
}
