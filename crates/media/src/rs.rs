//! Systematic Reed–Solomon erasure coding over GF(2⁸).
//!
//! §3.3 points to "joint source coding and forward error correction at the
//! application level" (the Nebula approach, ref [4]) as the way to ship video
//! at low latency over lossy paths. This is a real erasure code: `k` data
//! shards are extended with `m` parity shards built from a Cauchy matrix, and
//! the original data is recoverable from *any* `k` of the `k + m` shards.
//! (Every square submatrix of a Cauchy matrix is nonsingular, which makes the
//! systematic generator MDS.)

use std::fmt;

use crate::gf256;

/// Errors from Reed–Solomon construction, encoding, or reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    /// `k` was zero, or `k + m` exceeded the field size (256).
    InvalidShardCounts {
        /// Requested data shards.
        data: usize,
        /// Requested parity shards.
        parity: usize,
    },
    /// Shards passed to encode/reconstruct differ in length (or are empty).
    ShardSizeMismatch,
    /// The number of shards passed does not equal `k + m`.
    WrongShardCount {
        /// Shards provided.
        got: usize,
        /// Shards expected.
        expected: usize,
    },
    /// Fewer than `k` shards survive: the data is unrecoverable.
    NotEnoughShards {
        /// Surviving shards.
        have: usize,
        /// Shards needed.
        need: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::InvalidShardCounts { data, parity } => {
                write!(
                    f,
                    "invalid shard counts: {data} data + {parity} parity (need 1 <= k, k+m <= 256)"
                )
            }
            RsError::ShardSizeMismatch => write!(f, "shards must be non-empty and equal-sized"),
            RsError::WrongShardCount { got, expected } => {
                write!(f, "expected {expected} shards, got {got}")
            }
            RsError::NotEnoughShards { have, need } => {
                write!(f, "only {have} shards survive, {need} needed")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic Reed–Solomon erasure code with `k` data and `m` parity shards.
///
/// # Examples
///
/// ```
/// use metaclass_media::ReedSolomon;
///
/// let rs = ReedSolomon::new(4, 2)?;
/// let data: Vec<Vec<u8>> = vec![vec![1, 2], vec![3, 4], vec![5, 6], vec![7, 8]];
/// let parity = rs.encode(&data)?;
///
/// // Lose two arbitrary shards (one data, one parity) ...
/// let mut shards: Vec<Option<Vec<u8>>> =
///     data.iter().cloned().map(Some).chain(parity.into_iter().map(Some)).collect();
/// shards[1] = None;
/// shards[5] = None;
///
/// // ... and recover everything.
/// rs.reconstruct(&mut shards)?;
/// assert_eq!(shards[1].as_deref(), Some(&[3u8, 4][..]));
/// # Ok::<(), metaclass_media::RsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// `m x k` Cauchy parity matrix.
    parity: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Creates a code with `data_shards` (k) and `parity_shards` (m).
    ///
    /// # Errors
    ///
    /// [`RsError::InvalidShardCounts`] unless `1 <= k` and `k + m <= 256`.
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<Self, RsError> {
        let (k, m) = (data_shards, parity_shards);
        if k == 0 || k + m > 256 {
            return Err(RsError::InvalidShardCounts { data: k, parity: m });
        }
        // Cauchy matrix: rows indexed by x_i = k + i, columns by y_j = j.
        // x_i != y_j always, so x_i ^ y_j != 0 and every entry is invertible.
        let mut parity = Vec::with_capacity(m);
        for i in 0..m {
            let x = (k + i) as u8;
            let mut row = Vec::with_capacity(k);
            for j in 0..k {
                row.push(gf256::inv(x ^ j as u8));
            }
            parity.push(row);
        }
        Ok(ReedSolomon { k, m, parity })
    }

    /// Number of data shards (k).
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Number of parity shards (m).
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Total shards (k + m).
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Computes the `m` parity shards for `data` (exactly `k` equal-length,
    /// non-empty shards).
    ///
    /// # Errors
    ///
    /// [`RsError::WrongShardCount`] / [`RsError::ShardSizeMismatch`] on
    /// malformed input.
    pub fn encode<S: AsRef<[u8]>>(&self, data: &[S]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.k {
            return Err(RsError::WrongShardCount { got: data.len(), expected: self.k });
        }
        let len = data[0].as_ref().len();
        if len == 0 || data.iter().any(|s| s.as_ref().len() != len) {
            return Err(RsError::ShardSizeMismatch);
        }
        let mut parity = vec![vec![0u8; len]; self.m];
        for (i, p) in parity.iter_mut().enumerate() {
            for (j, d) in data.iter().enumerate() {
                gf256::mul_acc(p, d.as_ref(), self.parity[i][j]);
            }
        }
        Ok(parity)
    }

    /// Restores every missing shard in place. `shards` must hold `k + m`
    /// entries in index order (`None` = erased).
    ///
    /// # Errors
    ///
    /// [`RsError::NotEnoughShards`] if fewer than `k` shards survive, plus
    /// the input-shape errors of [`ReedSolomon::encode`].
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.total_shards() {
            return Err(RsError::WrongShardCount {
                got: shards.len(),
                expected: self.total_shards(),
            });
        }
        let present: Vec<usize> =
            shards.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|_| i)).collect();
        if present.len() < self.k {
            return Err(RsError::NotEnoughShards { have: present.len(), need: self.k });
        }
        let len = shards[present[0]].as_ref().expect("present").len();
        if len == 0 || present.iter().any(|&i| shards[i].as_ref().expect("present").len() != len) {
            return Err(RsError::ShardSizeMismatch);
        }
        if present.iter().take(self.k).eq((0..self.k).collect::<Vec<_>>().iter())
            && shards[..self.k].iter().all(|s| s.is_some())
        {
            // All data shards survive: just re-derive any missing parity.
            return self.refill_parity(shards, len);
        }

        // Build the k x k system from the first k surviving rows of the
        // generator [I; C].
        let rows: Vec<usize> = present.iter().copied().take(self.k).collect();
        let mut a = vec![vec![0u8; self.k]; self.k];
        for (r, &idx) in rows.iter().enumerate() {
            if idx < self.k {
                a[r][idx] = 1;
            } else {
                a[r].copy_from_slice(&self.parity[idx - self.k]);
            }
        }
        let a_inv = invert_matrix(a).expect("generator submatrix is nonsingular (Cauchy)");

        // data_j = sum_r a_inv[j][r] * shard(rows[r])
        let mut data = vec![vec![0u8; len]; self.k];
        for (j, out) in data.iter_mut().enumerate() {
            for (r, &idx) in rows.iter().enumerate() {
                let src = shards[idx].as_ref().expect("present");
                gf256::mul_acc(out, src, a_inv[j][r]);
            }
        }
        for (j, d) in data.into_iter().enumerate() {
            shards[j] = Some(d);
        }
        self.refill_parity(shards, len)
    }

    fn refill_parity(&self, shards: &mut [Option<Vec<u8>>], len: usize) -> Result<(), RsError> {
        for i in 0..self.m {
            if shards[self.k + i].is_none() {
                let mut p = vec![0u8; len];
                for (j, shard) in shards.iter().take(self.k).enumerate() {
                    let d = shard.as_ref().expect("data filled");
                    gf256::mul_acc(&mut p, d, self.parity[i][j]);
                }
                shards[self.k + i] = Some(p);
            }
        }
        Ok(())
    }
}

/// Gauss–Jordan inversion in GF(256). Returns `None` for singular matrices.
fn invert_matrix(mut a: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = a.len();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let mut row = vec![0u8; n];
            row[i] = 1;
            row
        })
        .collect();
    for col in 0..n {
        // Find a pivot.
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        // Normalize the pivot row.
        let p = gf256::inv(a[col][col]);
        for v in a[col].iter_mut() {
            *v = gf256::mul(*v, p);
        }
        for v in inv[col].iter_mut() {
            *v = gf256::mul(*v, p);
        }
        // Eliminate the column elsewhere.
        for r in 0..n {
            if r != col && a[r][col] != 0 {
                let f = a[r][col];
                for c in 0..n {
                    let (av, iv) = (a[col][c], inv[col][c]);
                    a[r][c] ^= gf256::mul(f, av);
                    inv[r][c] ^= gf256::mul(f, iv);
                }
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaclass_netsim::DetRng;
    use proptest::prelude::*;

    fn random_data(rng: &mut DetRng, k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k).map(|_| (0..len).map(|_| rng.range_u64(0, 256) as u8).collect()).collect()
    }

    #[test]
    fn roundtrip_with_no_erasures() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let mut rng = DetRng::new(1);
        let data = random_data(&mut rng, 5, 64);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().cloned().map(Some).chain(parity.into_iter().map(Some)).collect();
        rs.reconstruct(&mut shards).unwrap();
        for (j, d) in data.iter().enumerate() {
            assert_eq!(shards[j].as_ref().unwrap(), d);
        }
    }

    #[test]
    fn recovers_from_any_m_erasures() {
        let (k, m) = (6, 3);
        let rs = ReedSolomon::new(k, m).unwrap();
        let mut rng = DetRng::new(2);
        let data = random_data(&mut rng, k, 32);
        let parity = rs.encode(&data).unwrap();

        // Try every combination of exactly m erasures.
        let total = k + m;
        fn combos(n: usize, k: usize) -> Vec<Vec<usize>> {
            fn rec(
                start: usize,
                n: usize,
                k: usize,
                cur: &mut Vec<usize>,
                out: &mut Vec<Vec<usize>>,
            ) {
                if cur.len() == k {
                    out.push(cur.clone());
                    return;
                }
                for i in start..n {
                    cur.push(i);
                    rec(i + 1, n, k, cur, out);
                    cur.pop();
                }
            }
            let mut out = Vec::new();
            rec(0, n, k, &mut Vec::new(), &mut out);
            out
        }
        for erasure_set in combos(total, m) {
            let mut shards: Vec<Option<Vec<u8>>> =
                data.iter().cloned().map(Some).chain(parity.iter().cloned().map(Some)).collect();
            for &e in &erasure_set {
                shards[e] = None;
            }
            rs.reconstruct(&mut shards).unwrap();
            for (j, d) in data.iter().enumerate() {
                assert_eq!(shards[j].as_ref().unwrap(), d, "erasures {erasure_set:?}");
            }
            for (i, p) in parity.iter().enumerate() {
                assert_eq!(shards[k + i].as_ref().unwrap(), p, "erasures {erasure_set:?}");
            }
        }
    }

    #[test]
    fn one_too_many_erasures_fails_cleanly() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut rng = DetRng::new(3);
        let data = random_data(&mut rng, 4, 16);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().cloned().map(Some).chain(parity.into_iter().map(Some)).collect();
        shards[0] = None;
        shards[2] = None;
        shards[4] = None;
        assert_eq!(rs.reconstruct(&mut shards), Err(RsError::NotEnoughShards { have: 3, need: 4 }));
    }

    #[test]
    fn zero_parity_code_is_valid_but_fragile() {
        let rs = ReedSolomon::new(3, 0).unwrap();
        let data = vec![vec![1u8], vec![2], vec![3]];
        assert!(rs.encode(&data).unwrap().is_empty());
        let mut shards: Vec<Option<Vec<u8>>> = data.into_iter().map(Some).collect();
        rs.reconstruct(&mut shards).unwrap();
        let mut broken = vec![Some(vec![1u8]), None, Some(vec![3])];
        assert!(rs.reconstruct(&mut broken).is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(200, 57).is_err());
        assert!(ReedSolomon::new(200, 56).is_ok());
        let err = ReedSolomon::new(0, 1).unwrap_err();
        assert!(err.to_string().contains("invalid shard counts"));
    }

    #[test]
    fn malformed_shards_are_rejected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        assert_eq!(
            rs.encode(&[vec![1u8, 2]]).unwrap_err(),
            RsError::WrongShardCount { got: 1, expected: 2 }
        );
        assert_eq!(rs.encode(&[vec![1u8, 2], vec![3]]).unwrap_err(), RsError::ShardSizeMismatch);
        assert_eq!(rs.encode(&[vec![], vec![]]).unwrap_err(), RsError::ShardSizeMismatch);
        let mut wrong_count = vec![Some(vec![1u8])];
        assert_eq!(
            rs.reconstruct(&mut wrong_count).unwrap_err(),
            RsError::WrongShardCount { got: 1, expected: 3 }
        );
    }

    #[test]
    fn matrix_inversion_identities() {
        // I^-1 = I
        let i3 = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        assert_eq!(invert_matrix(i3.clone()), Some(i3));
        // Singular matrix returns None.
        let sing = vec![vec![1, 1], vec![1, 1]];
        assert_eq!(invert_matrix(sing), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_recovers_from_up_to_m_random_erasures(
            k in 1usize..10,
            m in 0usize..6,
            len in 1usize..80,
            seed in any::<u64>(),
        ) {
            let rs = ReedSolomon::new(k, m).unwrap();
            let mut rng = DetRng::new(seed);
            let data = random_data(&mut rng, k, len);
            let parity = rs.encode(&data).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.into_iter().map(Some))
                .collect();
            // Erase a random subset of size <= m.
            let erasures = if m == 0 { 0 } else { rng.range_u64(0, m as u64 + 1) as usize };
            let mut idx: Vec<usize> = (0..k + m).collect();
            rng.shuffle(&mut idx);
            for &e in idx.iter().take(erasures) {
                shards[e] = None;
            }
            rs.reconstruct(&mut shards).unwrap();
            for (j, d) in data.iter().enumerate() {
                prop_assert_eq!(shards[j].as_ref().unwrap(), d);
            }
        }
    }
}
