//! ARQ (retransmission) baseline for frame delivery.
//!
//! The comparator for FEC in experiment E6: a selective-repeat sender that
//! retransmits unacknowledged packets after a retransmission timeout. Under
//! loss, completing a frame costs at least one extra RTT per loss round —
//! exactly the latency FEC avoids.

use std::collections::BTreeMap;

use metaclass_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// ARQ tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArqConfig {
    /// Retransmission timeout. Realistic stacks use ~RTT + 4·jitter.
    pub rto: SimDuration,
    /// Give up after this many transmissions of one packet.
    pub max_transmissions: u32,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig { rto: SimDuration::from_millis(80), max_transmissions: 8 }
    }
}

/// A packet the ARQ sender wants on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArqPacket {
    /// Frame this packet belongs to.
    pub frame_id: u64,
    /// Packet index within the frame.
    pub index: u16,
    /// Payload size, bytes.
    pub bytes: u32,
    /// Which transmission attempt this is (1 = first).
    pub attempt: u32,
}

#[derive(Debug, Clone)]
struct Outstanding {
    bytes: u32,
    last_sent: Option<SimTime>,
    attempts: u32,
    acked: bool,
}

/// Selective-repeat ARQ sender for one frame.
///
/// Drive it with [`ArqFrameSender::due_packets`] (what to put on the wire
/// now) and [`ArqFrameSender::on_ack`]; poll [`ArqFrameSender::is_complete`].
///
/// # Examples
///
/// ```
/// use metaclass_media::{ArqConfig, ArqFrameSender};
/// use metaclass_netsim::SimTime;
///
/// let mut tx = ArqFrameSender::new(ArqConfig::default(), 1, &[500, 500, 500]);
/// let first = tx.due_packets(SimTime::ZERO);
/// assert_eq!(first.len(), 3);
/// tx.on_ack(0);
/// tx.on_ack(1);
/// tx.on_ack(2);
/// assert!(tx.is_complete());
/// ```
#[derive(Debug, Clone)]
pub struct ArqFrameSender {
    cfg: ArqConfig,
    frame_id: u64,
    packets: BTreeMap<u16, Outstanding>,
    transmissions: u64,
    gave_up: bool,
}

impl ArqFrameSender {
    /// Creates a sender for a frame split into packets of the given sizes.
    pub fn new(cfg: ArqConfig, frame_id: u64, packet_bytes: &[u32]) -> Self {
        let packets = packet_bytes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| {
                (i as u16, Outstanding { bytes, last_sent: None, attempts: 0, acked: false })
            })
            .collect();
        ArqFrameSender { cfg, frame_id, packets, transmissions: 0, gave_up: false }
    }

    /// The frame id this sender serves.
    pub fn frame_id(&self) -> u64 {
        self.frame_id
    }

    /// Packets that should be (re)transmitted at `now`: never-sent packets
    /// and unacked packets whose RTO expired. Marks them sent.
    pub fn due_packets(&mut self, now: SimTime) -> Vec<ArqPacket> {
        if self.gave_up {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (&index, p) in self.packets.iter_mut() {
            if p.acked {
                continue;
            }
            let due = match p.last_sent {
                None => true,
                Some(t) => now.duration_since(t) >= self.cfg.rto,
            };
            if due {
                if p.attempts >= self.cfg.max_transmissions {
                    self.gave_up = true;
                    return Vec::new();
                }
                p.attempts += 1;
                p.last_sent = Some(now);
                self.transmissions += 1;
                out.push(ArqPacket {
                    frame_id: self.frame_id,
                    index,
                    bytes: p.bytes,
                    attempt: p.attempts,
                });
            }
        }
        out
    }

    /// Processes an acknowledgement for packet `index` (duplicates ignored).
    pub fn on_ack(&mut self, index: u16) {
        if let Some(p) = self.packets.get_mut(&index) {
            p.acked = true;
        }
    }

    /// Whether every packet has been acknowledged.
    pub fn is_complete(&self) -> bool {
        self.packets.values().all(|p| p.acked)
    }

    /// Whether the sender abandoned the frame (too many retransmissions).
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// Total transmissions so far (including retransmissions).
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Total bytes transmitted so far.
    pub fn bytes_transmitted(&self) -> u64 {
        self.packets.values().map(|p| p.attempts as u64 * p.bytes as u64).sum()
    }
}

/// Receiver side: tracks which packets arrived and when the frame completed.
#[derive(Debug, Clone)]
pub struct ArqFrameReceiver {
    expected: u16,
    received: Vec<bool>,
    completed_at: Option<SimTime>,
}

impl ArqFrameReceiver {
    /// Creates a receiver expecting `packet_count` packets.
    ///
    /// # Panics
    ///
    /// Panics if `packet_count` is zero.
    pub fn new(packet_count: u16) -> Self {
        assert!(packet_count > 0, "a frame has at least one packet");
        ArqFrameReceiver {
            expected: packet_count,
            received: vec![false; packet_count as usize],
            completed_at: None,
        }
    }

    /// Ingests a packet arrival at `now`; returns the ack index to send back,
    /// or `None` for out-of-range indices.
    pub fn on_packet(&mut self, now: SimTime, index: u16) -> Option<u16> {
        if index >= self.expected {
            return None;
        }
        self.received[index as usize] = true;
        if self.completed_at.is_none() && self.received.iter().all(|&r| r) {
            self.completed_at = Some(now);
        }
        Some(index)
    }

    /// When the full frame was first available, if yet.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(n: usize) -> ArqFrameSender {
        ArqFrameSender::new(ArqConfig::default(), 1, &vec![1000u32; n])
    }

    #[test]
    fn lossless_path_sends_each_packet_once() {
        let mut tx = sender(4);
        let mut rx = ArqFrameReceiver::new(4);
        let pkts = tx.due_packets(SimTime::ZERO);
        assert_eq!(pkts.len(), 4);
        for p in &pkts {
            let ack = rx.on_packet(SimTime::from_millis(10), p.index).unwrap();
            tx.on_ack(ack);
        }
        assert!(tx.is_complete());
        assert_eq!(tx.transmissions(), 4);
        assert_eq!(rx.completed_at(), Some(SimTime::from_millis(10)));
        // Nothing more is due.
        assert!(tx.due_packets(SimTime::from_millis(200)).is_empty());
    }

    #[test]
    fn lost_packet_is_retransmitted_after_rto() {
        let mut tx = sender(2);
        let first = tx.due_packets(SimTime::ZERO);
        assert_eq!(first.len(), 2);
        tx.on_ack(0); // packet 1 lost
                      // Before RTO: nothing due.
        assert!(tx.due_packets(SimTime::from_millis(79)).is_empty());
        // After RTO: retransmit packet 1 only.
        let retx = tx.due_packets(SimTime::from_millis(80));
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].index, 1);
        assert_eq!(retx[0].attempt, 2);
        assert_eq!(tx.bytes_transmitted(), 3000);
    }

    #[test]
    fn gives_up_after_max_transmissions() {
        let cfg = ArqConfig { rto: SimDuration::from_millis(10), max_transmissions: 3 };
        let mut tx = ArqFrameSender::new(cfg, 1, &[100]);
        for i in 0..3u64 {
            assert_eq!(tx.due_packets(SimTime::from_millis(i * 10)).len(), 1);
        }
        assert!(tx.due_packets(SimTime::from_millis(30)).is_empty());
        assert!(tx.gave_up());
        assert!(!tx.is_complete());
    }

    #[test]
    fn duplicate_acks_and_bad_indices_are_benign() {
        let mut tx = sender(1);
        let mut rx = ArqFrameReceiver::new(1);
        tx.due_packets(SimTime::ZERO);
        assert_eq!(rx.on_packet(SimTime::ZERO, 5), None);
        tx.on_ack(0);
        tx.on_ack(0);
        tx.on_ack(42);
        assert!(tx.is_complete());
    }

    #[test]
    fn completion_time_is_first_full_arrival() {
        let mut rx = ArqFrameReceiver::new(2);
        rx.on_packet(SimTime::from_millis(5), 0);
        assert_eq!(rx.completed_at(), None);
        rx.on_packet(SimTime::from_millis(95), 1);
        assert_eq!(rx.completed_at(), Some(SimTime::from_millis(95)));
        // Late duplicate does not move the completion time.
        rx.on_packet(SimTime::from_millis(200), 0);
        assert_eq!(rx.completed_at(), Some(SimTime::from_millis(95)));
    }
}
