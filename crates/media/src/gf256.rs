//! Arithmetic in GF(2⁸), the field underlying the Reed–Solomon code.
//!
//! Uses the AES/QR-standard reduction polynomial x⁸+x⁴+x³+x²+1 (0x11d) with
//! compile-time log/antilog tables; multiplication and inversion are table
//! lookups.

/// The reduction polynomial (without the x⁸ term): 0x11d & 0xff.
const POLY: u16 = 0x11d;

const fn build_exp() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8; // duplicated so mul never reduces mod 255
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // exp[510], exp[511] are never indexed (max log sum is 254+254=508).
    exp[510] = exp[0];
    exp[511] = exp[1];
    exp
}

const fn build_log(exp: &[u8; 512]) -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    log
}

static EXP: [u8; 512] = build_exp();
static LOG: [u8; 256] = build_log(&EXP);

/// Addition in GF(2⁸) (carry-less: XOR). Subtraction is identical.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(2⁸).
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics if `a == 0` (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no multiplicative inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Division `a / b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Exponentiation `a^n`.
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = (LOG[a as usize] as u64 * n as u64) % 255;
    EXP[l as usize]
}

/// Multiply-accumulate over byte slices: `dst[i] ^= c * src[i]`.
///
/// The hot loop of Reed–Solomon encoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let lc = LOG[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= EXP[lc + LOG[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axioms_hold_exhaustively() {
        // Associativity and commutativity of mul over a sample grid; full
        // 256^3 is wasteful, use strided coverage.
        for a in (0u16..256).step_by(7) {
            for b in (0u16..256).step_by(5) {
                let (a, b) = (a as u8, b as u8);
                assert_eq!(mul(a, b), mul(b, a));
                assert_eq!(add(a, b), add(b, a));
                for c in (0u16..256).step_by(31) {
                    let c = c as u8;
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                    // Distributivity.
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn identities() {
        for a in 0u16..256 {
            let a = a as u8;
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, 0), a);
            assert_eq!(add(a, a), 0, "characteristic 2");
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for a in 1u16..256 {
            let a = a as u8;
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn exp_log_are_inverse_bijections() {
        let mut seen = [false; 256];
        for i in 0..255usize {
            assert!(!seen[EXP[i] as usize], "exp not injective at {i}");
            seen[EXP[i] as usize] = true;
        }
        assert!(!seen[0], "zero is not a power of the generator");
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 29, 142, 255] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1, "0^0 = 1 by convention");
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group: 2^255 = 1 and 2^n != 1 before.
        assert_eq!(pow(2, 255), 1);
        for n in 1..255 {
            assert_ne!(pow(2, n), 1, "order divides {n}");
        }
    }

    #[test]
    fn mul_acc_matches_scalar_path() {
        let src = [1u8, 0, 255, 73, 9, 128];
        for c in [0u8, 1, 2, 77, 255] {
            let mut dst = [7u8, 7, 7, 7, 7, 7];
            let mut expected = dst;
            mul_acc(&mut dst, &src, c);
            for (e, s) in expected.iter_mut().zip(&src) {
                *e = add(*e, mul(c, *s));
            }
            assert_eq!(dst, expected, "c = {c}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inverse_of_zero_panics() {
        inv(0);
    }
}
