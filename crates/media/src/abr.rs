//! Adaptive bitrate control.
//!
//! Remote learners sit behind wildly different access links (§3.3 mentions
//! "poorly interconnected" paths); a fixed-rate stream either starves good
//! links or drowns bad ones. This controller is a conservative
//! throughput-tracker with hysteresis: switch down immediately when the
//! estimated throughput can no longer carry the rung, switch up only after
//! the estimate has comfortably exceeded the next rung for several
//! consecutive observations.

use metaclass_netsim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::codec_model::VideoConfig;

/// The bitrate ladder, lowest rung first.
pub fn default_ladder() -> Vec<VideoConfig> {
    vec![
        VideoConfig {
            width: 640,
            height: 360,
            fps: 15.0,
            bitrate_bps: 300_000,
            keyframe_interval: 30,
        },
        VideoConfig {
            width: 854,
            height: 480,
            fps: 30.0,
            bitrate_bps: 800_000,
            keyframe_interval: 60,
        },
        VideoConfig {
            width: 1280,
            height: 720,
            fps: 30.0,
            bitrate_bps: 1_500_000,
            keyframe_interval: 60,
        },
        VideoConfig {
            width: 1920,
            height: 1080,
            fps: 30.0,
            bitrate_bps: 4_000_000,
            keyframe_interval: 60,
        },
        VideoConfig {
            width: 1920,
            height: 1080,
            fps: 60.0,
            bitrate_bps: 8_000_000,
            keyframe_interval: 120,
        },
    ]
}

/// Tuning of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbrConfig {
    /// A rung is sustainable if its bitrate ≤ `safety` × estimated throughput.
    pub safety: f64,
    /// Consecutive healthy observations required before switching up.
    pub up_stability: u32,
    /// EWMA factor for the throughput estimate (per observation).
    pub ewma_alpha: f64,
}

impl Default for AbrConfig {
    fn default() -> Self {
        AbrConfig { safety: 0.8, up_stability: 5, ewma_alpha: 0.25 }
    }
}

/// Throughput-tracking ABR controller over a bitrate ladder.
///
/// # Examples
///
/// ```
/// use metaclass_media::{default_ladder, AbrConfig, AbrController};
/// use metaclass_netsim::SimDuration;
///
/// let mut abr = AbrController::new(AbrConfig::default(), default_ladder());
/// for _ in 0..20 {
///     abr.observe(10_000_000.0, 0.0, SimDuration::from_millis(40)); // 10 Mbps, clean
/// }
/// assert_eq!(abr.current().bitrate_bps, 8_000_000); // climbed to the top rung
/// ```
#[derive(Debug, Clone)]
pub struct AbrController {
    cfg: AbrConfig,
    ladder: Vec<VideoConfig>,
    rung: usize,
    throughput_ewma: Option<f64>,
    healthy_streak: u32,
    switches: u64,
}

impl AbrController {
    /// Creates a controller starting on the lowest rung.
    ///
    /// # Panics
    ///
    /// Panics if `ladder` is empty or not sorted by ascending bitrate.
    pub fn new(cfg: AbrConfig, ladder: Vec<VideoConfig>) -> Self {
        assert!(!ladder.is_empty(), "ladder must be non-empty");
        assert!(
            ladder.windows(2).all(|w| w[0].bitrate_bps <= w[1].bitrate_bps),
            "ladder must be sorted by bitrate"
        );
        AbrController {
            cfg,
            ladder,
            rung: 0,
            throughput_ewma: None,
            healthy_streak: 0,
            switches: 0,
        }
    }

    /// The active rung.
    pub fn current(&self) -> &VideoConfig {
        &self.ladder[self.rung]
    }

    /// Index of the active rung.
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// Rung switches so far.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Smoothed throughput estimate, bits/second.
    pub fn estimated_throughput(&self) -> Option<f64> {
        self.throughput_ewma
    }

    /// Feeds one observation window: measured goodput (bits/s), packet-loss
    /// fraction, and observed RTT, then applies the switching policy.
    pub fn observe(&mut self, goodput_bps: f64, loss: f64, _rtt: SimDuration) {
        // Loss deflates the usable-throughput estimate sharply.
        let effective = goodput_bps * (1.0 - loss.clamp(0.0, 1.0)).powi(2);
        let est = match self.throughput_ewma {
            None => effective,
            Some(prev) => prev + self.cfg.ewma_alpha * (effective - prev),
        };
        self.throughput_ewma = Some(est);

        let sustainable = |bps: u64| bps as f64 <= self.cfg.safety * est;

        if !sustainable(self.current().bitrate_bps) {
            // Down-switch immediately to the highest sustainable rung.
            let target = (0..=self.rung)
                .rev()
                .find(|&r| sustainable(self.ladder[r].bitrate_bps))
                .unwrap_or(0);
            if target != self.rung {
                self.rung = target;
                self.switches += 1;
            }
            self.healthy_streak = 0;
            return;
        }

        // Up-switch only after a stable healthy streak.
        if self.rung + 1 < self.ladder.len() && sustainable(self.ladder[self.rung + 1].bitrate_bps)
        {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.cfg.up_stability {
                self.rung += 1;
                self.switches += 1;
                self.healthy_streak = 0;
            }
        } else {
            self.healthy_streak = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtt() -> SimDuration {
        SimDuration::from_millis(40)
    }

    #[test]
    fn starts_at_the_bottom() {
        let abr = AbrController::new(AbrConfig::default(), default_ladder());
        assert_eq!(abr.rung(), 0);
        assert_eq!(abr.current().bitrate_bps, 300_000);
    }

    #[test]
    fn climbs_gradually_on_a_clean_fat_pipe() {
        let mut abr = AbrController::new(AbrConfig::default(), default_ladder());
        let mut rungs = vec![abr.rung()];
        for _ in 0..30 {
            abr.observe(20_000_000.0, 0.0, rtt());
            rungs.push(abr.rung());
        }
        assert_eq!(*rungs.last().unwrap(), 4);
        // Never jumps more than one rung upward at a time.
        for w in rungs.windows(2) {
            assert!(w[1] <= w[0] + 1);
        }
    }

    #[test]
    fn drops_immediately_on_congestion() {
        let mut abr = AbrController::new(AbrConfig::default(), default_ladder());
        for _ in 0..40 {
            abr.observe(20_000_000.0, 0.0, rtt());
        }
        assert_eq!(abr.rung(), 4);
        // Throughput collapses to 500 kbps: once the EWMA catches up, only
        // the bottom rung (300 kbps) is sustainable.
        for _ in 0..30 {
            abr.observe(500_000.0, 0.0, rtt());
        }
        assert_eq!(abr.rung(), 0, "should fall to the bottom rung");
    }

    #[test]
    fn loss_deflates_the_estimate() {
        let mut abr = AbrController::new(AbrConfig::default(), default_ladder());
        // 10 Mbps but 30% loss: effective ~4.9 Mbps → top rung unsustainable.
        for _ in 0..30 {
            abr.observe(10_000_000.0, 0.3, rtt());
        }
        assert!(abr.rung() < 4, "rung {} with heavy loss", abr.rung());
        assert!(abr.rung() >= 2, "shouldn't collapse to the floor either");
    }

    #[test]
    fn flapping_throughput_does_not_flap_rungs() {
        let mut abr = AbrController::new(AbrConfig::default(), default_ladder());
        for i in 0..100 {
            // Oscillating between 1.2 and 2.4 Mbps around the 1.5 Mbps rung.
            let tp = if i % 2 == 0 { 1_200_000.0 } else { 2_400_000.0 };
            abr.observe(tp, 0.0, rtt());
        }
        assert!(abr.switch_count() < 10, "{} switches in 100 windows", abr.switch_count());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_ladder_is_rejected() {
        let mut ladder = default_ladder();
        ladder.swap(0, 3);
        AbrController::new(AbrConfig::default(), ladder);
    }
}
