//! # metaclass-media
//!
//! The video/audio transport of the blueprint: "many courses may rely on
//! video transmission, whether of the instructor, digital artefacts (e.g.,
//! slides), or physical objects in the classroom … Maximizing video quality
//! while minimizing latency … solutions leveraging joint source coding and
//! forward error correction at the application level are presenting promising
//! results" (§3.3, citing Nebula).
//!
//! Everything here is implemented from scratch:
//!
//! - [`gf256`] — GF(2⁸) arithmetic with compile-time tables;
//! - [`ReedSolomon`] — a real systematic MDS erasure code (Cauchy
//!   generator): recover from **any** k of k+m shards;
//! - [`shard_frame`] / [`FrameAssembler`] — frame packetization over FEC;
//! - [`ArqFrameSender`] / [`ArqFrameReceiver`] — the selective-repeat
//!   retransmission baseline FEC is compared against (experiment E6);
//! - [`VideoSource`] / [`legibility_score`] — a calibrated rate–distortion
//!   model standing in for a hardware encoder;
//! - [`AbrController`] — throughput-tracking adaptive bitrate with
//!   hysteresis.
//!
//! # Examples
//!
//! Ship a frame through 20% random loss with zero retransmissions:
//!
//! ```
//! use metaclass_media::{shard_frame, FecConfig, FrameAssembler};
//!
//! let cfg = FecConfig { data_shards: 8, parity_shards: 4 };
//! let frame = vec![0x5au8; 4096];
//! let shards = shard_frame(0, &frame, cfg)?;
//!
//! let mut asm = FrameAssembler::new();
//! let mut delivered = None;
//! for (i, s) in shards.into_iter().enumerate() {
//!     if i % 5 == 0 {
//!         continue; // the network ate every fifth packet
//!     }
//!     delivered = asm.ingest(s)?.or(delivered);
//! }
//! assert_eq!(delivered.unwrap().1, frame);
//! # Ok::<(), metaclass_media::RsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abr;
mod arq;
mod audio;
mod codec_model;
mod fec;
pub mod gf256;
mod rs;

pub use abr::{default_ladder, AbrConfig, AbrController};
pub use arq::{ArqConfig, ArqFrameReceiver, ArqFrameSender, ArqPacket};
pub use audio::{
    mix_for_listener, per_listener_bandwidth_bound, perceived_loudness, ListenerMix, MixPolicy,
    VoiceQuality, VoiceSource,
};
pub use codec_model::{
    legibility_after_stalls, legibility_score, VideoConfig, VideoFrame, VideoSource,
};
pub use fec::{shard_frame, FecConfig, FrameAssembler, FrameShard};
pub use rs::{ReedSolomon, RsError};
