//! Rate–distortion video model.
//!
//! §3.3: "many courses may rely on video transmission … a high video quality
//! (high resolution with few artifacts) is also necessary to deliver
//! information with high legibility." We substitute a calibrated analytic
//! model for a real encoder: frame sizes follow the usual I/P GOP structure
//! and the *legibility score* follows a logistic curve in bits-per-pixel —
//! the standard shape of subjective quality vs bitrate.

use metaclass_netsim::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};

/// Encoder configuration for one video stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Frame width, pixels.
    pub width: u32,
    /// Frame height, pixels.
    pub height: u32,
    /// Frames per second.
    pub fps: f64,
    /// Target bitrate, bits per second.
    pub bitrate_bps: u64,
    /// Frames between keyframes (GOP length).
    pub keyframe_interval: u32,
}

impl VideoConfig {
    /// 1080p30 at 4 Mbit/s — a lecture camera.
    pub fn lecture_camera() -> Self {
        VideoConfig {
            width: 1920,
            height: 1080,
            fps: 30.0,
            bitrate_bps: 4_000_000,
            keyframe_interval: 60,
        }
    }

    /// 1080p10 at 1 Mbit/s — a slide/whiteboard share (low motion).
    pub fn slide_share() -> Self {
        VideoConfig {
            width: 1920,
            height: 1080,
            fps: 10.0,
            bitrate_bps: 1_000_000,
            keyframe_interval: 50,
        }
    }

    /// 720p30 at 1.5 Mbit/s — a webcam tile in a conference grid.
    pub fn webcam_tile() -> Self {
        VideoConfig {
            width: 1280,
            height: 720,
            fps: 30.0,
            bitrate_bps: 1_500_000,
            keyframe_interval: 60,
        }
    }

    /// Bits per pixel per frame at the target bitrate.
    pub fn bits_per_pixel(&self) -> f64 {
        self.bitrate_bps as f64 / (self.width as f64 * self.height as f64 * self.fps)
    }

    /// Frame period.
    pub fn frame_period(&self) -> SimDuration {
        SimDuration::from_rate_hz(self.fps)
    }

    /// Mean encoded frame size, bytes.
    pub fn mean_frame_bytes(&self) -> f64 {
        self.bitrate_bps as f64 / self.fps / 8.0
    }
}

/// One encoded frame emitted by [`VideoSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VideoFrame {
    /// Monotonic frame id.
    pub id: u64,
    /// Encoded size, bytes.
    pub bytes: u32,
    /// Whether this is a keyframe (decodable standalone).
    pub is_keyframe: bool,
}

/// Deterministic synthetic encoder: emits frames with GOP structure and
/// realistic size variation.
///
/// # Examples
///
/// ```
/// use metaclass_media::{VideoConfig, VideoSource};
///
/// let mut src = VideoSource::new(VideoConfig::lecture_camera(), 42);
/// let first = src.next_frame();
/// assert!(first.is_keyframe);
/// ```
#[derive(Debug, Clone)]
pub struct VideoSource {
    cfg: VideoConfig,
    rng: DetRng,
    next_id: u64,
}

/// Keyframes are this factor larger than the mean frame.
const I_FRAME_FACTOR: f64 = 4.0;

impl VideoSource {
    /// Creates a source with its own deterministic size stream.
    pub fn new(cfg: VideoConfig, seed: u64) -> Self {
        VideoSource { cfg, rng: DetRng::new(seed).derive(0x0076_6964_656f), next_id: 0 }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &VideoConfig {
        &self.cfg
    }

    /// Emits the next frame. Sizes average to the configured bitrate: in a
    /// GOP of `g` frames, the keyframe takes `I_FRAME_FACTOR` shares and each
    /// P-frame takes `(g - F) / (g - 1)` of the rest.
    pub fn next_frame(&mut self) -> VideoFrame {
        let id = self.next_id;
        self.next_id += 1;
        let g = self.cfg.keyframe_interval.max(1) as f64;
        let mean = self.cfg.mean_frame_bytes();
        let is_keyframe = id.is_multiple_of(self.cfg.keyframe_interval.max(1) as u64);
        let base = if is_keyframe || g <= 1.0 {
            mean * I_FRAME_FACTOR.min(g)
        } else {
            mean * (g - I_FRAME_FACTOR.min(g)) / (g - 1.0)
        };
        // ±20% lognormal-ish content variation.
        let factor = self.rng.truncated_normal(1.0, 0.2, 0.5, 2.0);
        VideoFrame { id, bytes: (base * factor).max(64.0).round() as u32, is_keyframe }
    }
}

/// Subjective legibility (0–100) of a stream at its configured rate:
/// a logistic curve in bits-per-pixel, saturating near transparent quality.
///
/// Calibration: 1080p30 at 4 Mbit/s (≈ 0.064 bpp with modern codecs) scores
/// ≈ 80; halving the bitrate costs ≈ 12 points.
pub fn legibility_score(cfg: &VideoConfig) -> f64 {
    let bpp = cfg.bits_per_pixel();
    // Mid-point at 0.02 bpp, log-domain slope.
    let x = (bpp.max(1e-6) / 0.02).ln();
    100.0 / (1.0 + (-x / 0.9).exp())
}

/// Degrades a legibility score by the fraction of frames that missed their
/// display deadline or were undecodable. Freezes hurt legibility sharply:
/// even a small stall fraction costs more than its proportional share of
/// quality (the penalty curve is steepest at the origin).
pub fn legibility_after_stalls(base: f64, stall_fraction: f64) -> f64 {
    let s = stall_fraction.clamp(0.0, 1.0);
    (base * (1.0 - s).powf(1.5)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_rate_matches_target() {
        let cfg = VideoConfig::lecture_camera();
        let mut src = VideoSource::new(cfg, 1);
        let n = 3000;
        let total: u64 = (0..n).map(|_| src.next_frame().bytes as u64).sum();
        let secs = n as f64 / cfg.fps;
        let rate = total as f64 * 8.0 / secs;
        let err = (rate - cfg.bitrate_bps as f64).abs() / cfg.bitrate_bps as f64;
        assert!(err < 0.05, "rate {rate} vs target {} ({err:.3})", cfg.bitrate_bps);
    }

    #[test]
    fn gop_structure_is_periodic_and_keyframes_are_big() {
        let cfg = VideoConfig { keyframe_interval: 30, ..VideoConfig::lecture_camera() };
        let mut src = VideoSource::new(cfg, 2);
        let frames: Vec<VideoFrame> = (0..120).map(|_| src.next_frame()).collect();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.is_keyframe, i % 30 == 0, "frame {i}");
        }
        let avg_i: f64 =
            frames.iter().filter(|f| f.is_keyframe).map(|f| f.bytes as f64).sum::<f64>() / 4.0;
        let avg_p: f64 =
            frames.iter().filter(|f| !f.is_keyframe).map(|f| f.bytes as f64).sum::<f64>() / 116.0;
        assert!(avg_i > 3.0 * avg_p, "I {avg_i} vs P {avg_p}");
    }

    #[test]
    fn legibility_grows_with_bitrate() {
        let mut prev = 0.0;
        for mbps in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let cfg =
                VideoConfig { bitrate_bps: (mbps * 1e6) as u64, ..VideoConfig::lecture_camera() };
            let q = legibility_score(&cfg);
            assert!(q > prev, "quality not monotone at {mbps} Mbps");
            assert!((0.0..=100.0).contains(&q));
            prev = q;
        }
    }

    #[test]
    fn calibration_point_holds() {
        let q = legibility_score(&VideoConfig::lecture_camera());
        assert!((75.0..90.0).contains(&q), "1080p30@4Mbps scored {q}");
        let half = legibility_score(&VideoConfig {
            bitrate_bps: 2_000_000,
            ..VideoConfig::lecture_camera()
        });
        assert!((q - half) > 5.0 && (q - half) < 20.0, "halving cost {}", q - half);
    }

    #[test]
    fn stalls_hurt_more_than_proportionally() {
        let base = 80.0;
        let q10 = legibility_after_stalls(base, 0.1);
        let q20 = legibility_after_stalls(base, 0.2);
        assert!(q10 < base && q20 < q10);
        // A 10% stall fraction costs more than 10% of the score.
        assert!((base - q10) > 0.1 * base, "penalty {}", base - q10);
        assert_eq!(legibility_after_stalls(base, 1.0), 0.0);
        assert_eq!(legibility_after_stalls(base, -0.5), base);
    }

    #[test]
    fn presets_are_ordered_by_rate() {
        assert!(VideoConfig::lecture_camera().bitrate_bps > VideoConfig::webcam_tile().bitrate_bps);
        assert!(VideoConfig::webcam_tile().bitrate_bps > VideoConfig::slide_share().bitrate_bps);
        assert_eq!(VideoConfig::lecture_camera().frame_period().as_nanos(), 33_333_333);
    }
}
