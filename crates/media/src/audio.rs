//! Classroom audio: voice streams and spatial mixing.
//!
//! §3.3: video and avatar motion must "match … the related audio
//! transmission". Voice is the classroom's most latency-critical medium
//! after head tracking; this module models per-speaker voice streams
//! (Opus-class bitrates), distance attenuation in the shared space, and the
//! server-side mixing policy that keeps per-listener audio bandwidth bounded
//! no matter how many people are in the room.

use metaclass_avatar::Vec3;
use serde::{Deserialize, Serialize};

/// An Opus-class voice encoding rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VoiceQuality {
    /// 16 kbit/s narrowband (intelligible, phone-like).
    Narrowband,
    /// 24 kbit/s wideband (the conferencing default).
    Wideband,
    /// 48 kbit/s fullband (music/room tone survives).
    Fullband,
}

impl VoiceQuality {
    /// Encoded bitrate, bits per second.
    pub fn bitrate_bps(self) -> u64 {
        match self {
            VoiceQuality::Narrowband => 16_000,
            VoiceQuality::Wideband => 24_000,
            VoiceQuality::Fullband => 48_000,
        }
    }

    /// Subjective quality (MOS-like, 1–5).
    pub fn mos(self) -> f64 {
        match self {
            VoiceQuality::Narrowband => 3.6,
            VoiceQuality::Wideband => 4.2,
            VoiceQuality::Fullband => 4.5,
        }
    }
}

/// A speaking participant, as input to the mixer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoiceSource {
    /// Position of the speaker in the shared space.
    pub position: Vec3,
    /// Whether voice activity detection currently hears speech.
    pub speaking: bool,
    /// Capture loudness, `0.0..=1.0` (1 = presenting voice).
    pub loudness: f64,
}

/// Perceived loudness of `source` at `listener`: inverse-square distance
/// attenuation with a 1 m reference and a silence floor at 30 m.
pub fn perceived_loudness(source: &VoiceSource, listener: Vec3) -> f64 {
    if !source.speaking || source.loudness <= 0.0 {
        return 0.0;
    }
    let d = source.position.distance(listener).max(1.0);
    if d > 30.0 {
        return 0.0;
    }
    source.loudness / (d * d)
}

/// How the server delivers audio to one listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MixPolicy {
    /// Forward the `k` loudest streams; the client spatializes them.
    /// Preserves spatial audio at `k x bitrate` per listener.
    ForwardTopK {
        /// Streams forwarded.
        k: usize,
    },
    /// Server mixes everything into a single mono stream. Cheapest, loses
    /// spatialization (the video-conference experience).
    ServerMix,
}

/// What one listener receives this mixing interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ListenerMix {
    /// Indices (into the source slice) of forwarded streams, loudest first.
    pub forwarded: Vec<usize>,
    /// Downstream audio bandwidth, bits per second.
    pub bandwidth_bps: u64,
    /// Whether the mix preserves spatial positions.
    pub spatial: bool,
}

/// Computes the mix for a listener at `position`.
///
/// # Examples
///
/// ```
/// use metaclass_avatar::Vec3;
/// use metaclass_media::{mix_for_listener, MixPolicy, VoiceQuality, VoiceSource};
///
/// let sources = vec![
///     VoiceSource { position: Vec3::new(1.0, 0.0, 0.0), speaking: true, loudness: 1.0 },
///     VoiceSource { position: Vec3::new(25.0, 0.0, 0.0), speaking: true, loudness: 0.4 },
///     VoiceSource { position: Vec3::new(2.0, 0.0, 0.0), speaking: false, loudness: 0.8 },
/// ];
/// let mix = mix_for_listener(
///     Vec3::ZERO,
///     &sources,
///     MixPolicy::ForwardTopK { k: 2 },
///     VoiceQuality::Wideband,
/// );
/// assert_eq!(mix.forwarded, vec![0, 1]); // silent source excluded
/// assert!(mix.spatial);
/// ```
pub fn mix_for_listener(
    position: Vec3,
    sources: &[VoiceSource],
    policy: MixPolicy,
    quality: VoiceQuality,
) -> ListenerMix {
    let mut audible: Vec<(usize, f64)> = sources
        .iter()
        .enumerate()
        .map(|(i, s)| (i, perceived_loudness(s, position)))
        .filter(|(_, l)| *l > 0.0)
        .collect();
    audible.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    match policy {
        MixPolicy::ForwardTopK { k } => {
            let forwarded: Vec<usize> = audible.iter().take(k).map(|(i, _)| *i).collect();
            ListenerMix {
                bandwidth_bps: forwarded.len() as u64 * quality.bitrate_bps(),
                forwarded,
                spatial: true,
            }
        }
        MixPolicy::ServerMix => ListenerMix {
            forwarded: audible.iter().map(|(i, _)| *i).collect(),
            bandwidth_bps: if audible.is_empty() { 0 } else { quality.bitrate_bps() },
            spatial: false,
        },
    }
}

/// Per-listener audio bandwidth for a whole classroom under a policy:
/// the bound that makes spatial audio affordable at scale.
pub fn per_listener_bandwidth_bound(policy: MixPolicy, quality: VoiceQuality) -> u64 {
    match policy {
        MixPolicy::ForwardTopK { k } => k as u64 * quality.bitrate_bps(),
        MixPolicy::ServerMix => quality.bitrate_bps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(x: f64, speaking: bool, loudness: f64) -> VoiceSource {
        VoiceSource { position: Vec3::new(x, 0.0, 0.0), speaking, loudness }
    }

    #[test]
    fn attenuation_is_inverse_square_with_floor() {
        let s = src(2.0, true, 1.0);
        let near = perceived_loudness(&s, Vec3::ZERO);
        assert!((near - 0.25).abs() < 1e-12);
        // Inside 1 m, loudness saturates.
        let s_close = src(0.2, true, 1.0);
        assert_eq!(perceived_loudness(&s_close, Vec3::ZERO), 1.0);
        // Beyond 30 m: silence.
        let s_far = src(31.0, true, 1.0);
        assert_eq!(perceived_loudness(&s_far, Vec3::ZERO), 0.0);
    }

    #[test]
    fn silent_sources_are_never_forwarded() {
        let sources = vec![src(1.0, false, 1.0), src(2.0, true, 0.0)];
        let mix = mix_for_listener(
            Vec3::ZERO,
            &sources,
            MixPolicy::ForwardTopK { k: 4 },
            VoiceQuality::Wideband,
        );
        assert!(mix.forwarded.is_empty());
        assert_eq!(mix.bandwidth_bps, 0);
    }

    #[test]
    fn top_k_keeps_the_loudest_and_bounds_bandwidth() {
        let sources: Vec<VoiceSource> = (1..=10).map(|i| src(i as f64, true, 1.0)).collect();
        let mix = mix_for_listener(
            Vec3::ZERO,
            &sources,
            MixPolicy::ForwardTopK { k: 3 },
            VoiceQuality::Wideband,
        );
        assert_eq!(mix.forwarded, vec![0, 1, 2], "nearest three win");
        assert_eq!(mix.bandwidth_bps, 3 * 24_000);
        assert_eq!(
            mix.bandwidth_bps,
            per_listener_bandwidth_bound(MixPolicy::ForwardTopK { k: 3 }, VoiceQuality::Wideband)
        );
    }

    #[test]
    fn server_mix_is_one_stream_regardless_of_class_size() {
        let sources: Vec<VoiceSource> =
            (1..=50).map(|i| src((i % 20) as f64 + 1.0, true, 0.5)).collect();
        let mix =
            mix_for_listener(Vec3::ZERO, &sources, MixPolicy::ServerMix, VoiceQuality::Fullband);
        assert!(!mix.spatial);
        assert_eq!(mix.bandwidth_bps, 48_000);
        assert!(mix.forwarded.len() > 10, "the mix still contains everyone audible");
    }

    #[test]
    fn quality_rungs_are_ordered() {
        assert!(VoiceQuality::Narrowband.bitrate_bps() < VoiceQuality::Wideband.bitrate_bps());
        assert!(VoiceQuality::Wideband.mos() < VoiceQuality::Fullband.mos());
        assert!(VoiceQuality::Narrowband.mos() >= 3.5, "still intelligible");
    }

    #[test]
    fn mixing_is_deterministic_under_ties() {
        let sources = vec![src(3.0, true, 1.0), src(3.0, true, 1.0), src(3.0, true, 1.0)];
        let a = mix_for_listener(
            Vec3::ZERO,
            &sources,
            MixPolicy::ForwardTopK { k: 2 },
            VoiceQuality::Wideband,
        );
        let b = mix_for_listener(
            Vec3::ZERO,
            &sources,
            MixPolicy::ForwardTopK { k: 2 },
            VoiceQuality::Wideband,
        );
        assert_eq!(a, b);
        assert_eq!(a.forwarded, vec![0, 1], "ties break by index");
    }
}
