//! Frame packetization with forward error correction.
//!
//! A video frame is split into `k` equal data shards, extended with `m`
//! Reed–Solomon parity shards, and each shard travels as one packet. The
//! receiver reassembles the frame from *any* `k` arriving shards — no
//! retransmission round-trip, which is the entire latency argument of §3.3.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::rs::{ReedSolomon, RsError};

/// FEC configuration: shards per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FecConfig {
    /// Data shards per frame (k).
    pub data_shards: usize,
    /// Parity shards per frame (m). Overhead is `m / k`.
    pub parity_shards: usize,
}

impl Default for FecConfig {
    fn default() -> Self {
        // 25% overhead: tolerates 1-in-5 packet loss per frame.
        FecConfig { data_shards: 8, parity_shards: 2 }
    }
}

impl FecConfig {
    /// Bandwidth overhead ratio added by parity (`m / k`).
    pub fn overhead(&self) -> f64 {
        self.parity_shards as f64 / self.data_shards as f64
    }
}

/// One shard of one frame, as carried in a packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameShard {
    /// Which frame this shard belongs to.
    pub frame_id: u64,
    /// Shard index in `0..(k + m)`; indexes `< k` are data.
    pub index: u16,
    /// Data shards in this frame (k).
    pub data_shards: u16,
    /// Parity shards in this frame (m).
    pub parity_shards: u16,
    /// Original frame length (the last data shard is zero-padded).
    pub frame_len: u32,
    /// Shard payload.
    pub payload: Vec<u8>,
}

impl FrameShard {
    /// Wire size: payload plus the 17-byte shard header.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + 17
    }
}

/// Splits a frame into `k` data + `m` parity shards.
///
/// # Errors
///
/// Propagates [`RsError`] for invalid configurations; `frame` must be
/// non-empty.
///
/// # Examples
///
/// ```
/// use metaclass_media::{shard_frame, FecConfig, FrameAssembler};
///
/// let cfg = FecConfig { data_shards: 4, parity_shards: 2 };
/// let frame: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
/// let shards = shard_frame(7, &frame, cfg)?;
/// assert_eq!(shards.len(), 6);
///
/// // Deliver only 4 of 6 shards (drop one data, one parity):
/// let mut asm = FrameAssembler::new();
/// for s in shards.into_iter().enumerate().filter(|(i, _)| *i != 1 && *i != 5).map(|(_, s)| s) {
///     if let Some((id, data)) = asm.ingest(s)? {
///         assert_eq!(id, 7);
///         assert_eq!(data, frame);
///     }
/// }
/// # Ok::<(), metaclass_media::RsError>(())
/// ```
pub fn shard_frame(
    frame_id: u64,
    frame: &[u8],
    cfg: FecConfig,
) -> Result<Vec<FrameShard>, RsError> {
    if frame.is_empty() {
        return Err(RsError::ShardSizeMismatch);
    }
    let k = cfg.data_shards;
    let m = cfg.parity_shards;
    let rs = ReedSolomon::new(k, m)?;
    let shard_len = frame.len().div_ceil(k);
    let mut data: Vec<Vec<u8>> = Vec::with_capacity(k);
    for i in 0..k {
        let start = (i * shard_len).min(frame.len());
        let end = ((i + 1) * shard_len).min(frame.len());
        let mut s = frame[start..end].to_vec();
        s.resize(shard_len, 0);
        data.push(s);
    }
    let parity = rs.encode(&data)?;
    let mut out = Vec::with_capacity(k + m);
    for (i, payload) in data.into_iter().chain(parity).enumerate() {
        out.push(FrameShard {
            frame_id,
            index: i as u16,
            data_shards: k as u16,
            parity_shards: m as u16,
            frame_len: frame.len() as u32,
            payload,
        });
    }
    Ok(out)
}

#[derive(Debug, Clone)]
struct PartialFrame {
    shards: Vec<Option<Vec<u8>>>,
    received: usize,
    data_shards: usize,
    frame_len: usize,
}

/// Reassembles frames from arriving shards, reconstructing through FEC as
/// soon as any `k` shards of a frame are in.
#[derive(Debug, Clone, Default)]
pub struct FrameAssembler {
    pending: BTreeMap<u64, PartialFrame>,
    /// Frames already delivered (late duplicates are ignored).
    delivered_up_to: Option<u64>,
    delivered: Vec<u64>,
    recovered_via_parity: u64,
    capacity: usize,
}

impl FrameAssembler {
    /// Creates an assembler holding at most 64 incomplete frames.
    pub fn new() -> Self {
        FrameAssembler {
            pending: BTreeMap::new(),
            delivered_up_to: None,
            delivered: Vec::new(),
            recovered_via_parity: 0,
            capacity: 64,
        }
    }

    /// Frames that needed parity reconstruction (vs all-data arrivals).
    pub fn recovered_via_parity(&self) -> u64 {
        self.recovered_via_parity
    }

    /// Incomplete frames currently buffered.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Ingests one shard. Returns the reassembled `(frame_id, bytes)` when
    /// this shard completes its frame; duplicates and shards of
    /// already-delivered frames return `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Propagates [`RsError`] on inconsistent shard geometry.
    pub fn ingest(&mut self, shard: FrameShard) -> Result<Option<(u64, Vec<u8>)>, RsError> {
        if self.delivered.contains(&shard.frame_id) {
            return Ok(None);
        }
        let k = shard.data_shards as usize;
        let m = shard.parity_shards as usize;
        let total = k + m;
        if shard.index as usize >= total {
            return Err(RsError::WrongShardCount { got: shard.index as usize, expected: total });
        }
        let entry = self.pending.entry(shard.frame_id).or_insert_with(|| PartialFrame {
            shards: vec![None; total],
            received: 0,
            data_shards: k,
            frame_len: shard.frame_len as usize,
        });
        if entry.shards.len() != total || entry.data_shards != k {
            return Err(RsError::WrongShardCount { got: total, expected: entry.shards.len() });
        }
        let slot = &mut entry.shards[shard.index as usize];
        if slot.is_none() {
            *slot = Some(shard.payload);
            entry.received += 1;
        }
        if entry.received < k {
            // Bound memory: evict the oldest incomplete frame if over capacity.
            if self.pending.len() > self.capacity {
                let oldest = *self.pending.keys().next().expect("non-empty");
                self.pending.remove(&oldest);
            }
            return Ok(None);
        }

        // Complete: reconstruct if any data shard is missing.
        let mut entry = self.pending.remove(&shard.frame_id).expect("present");
        let missing_data = entry.shards[..k].iter().any(|s| s.is_none());
        if missing_data {
            let rs = ReedSolomon::new(k, m)?;
            rs.reconstruct(&mut entry.shards)?;
            self.recovered_via_parity += 1;
        }
        let mut frame = Vec::with_capacity(entry.frame_len);
        for s in entry.shards[..k].iter() {
            frame.extend_from_slice(s.as_ref().expect("reconstructed"));
        }
        frame.truncate(entry.frame_len);
        self.delivered.push(shard.frame_id);
        if self.delivered.len() > 256 {
            self.delivered.remove(0);
        }
        self.delivered_up_to =
            Some(self.delivered_up_to.map_or(shard.frame_id, |d| d.max(shard.frame_id)));
        Ok(Some((shard.frame_id, frame)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaclass_netsim::DetRng;
    use proptest::prelude::*;

    fn frame(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = DetRng::new(seed);
        (0..len).map(|_| rng.range_u64(0, 256) as u8).collect()
    }

    #[test]
    fn all_data_shards_reassemble_without_parity() {
        let cfg = FecConfig { data_shards: 5, parity_shards: 2 };
        let f = frame(997, 1);
        let shards = shard_frame(1, &f, cfg).unwrap();
        let mut asm = FrameAssembler::new();
        let mut out = None;
        for s in shards.into_iter().take(5) {
            out = asm.ingest(s).unwrap().or(out);
        }
        assert_eq!(out.unwrap().1, f);
        assert_eq!(asm.recovered_via_parity(), 0);
    }

    #[test]
    fn parity_fills_in_for_lost_data() {
        let cfg = FecConfig { data_shards: 5, parity_shards: 2 };
        let f = frame(997, 2);
        let shards = shard_frame(9, &f, cfg).unwrap();
        let mut asm = FrameAssembler::new();
        let mut out = None;
        // Drop data shards 0 and 3, keep everything else.
        for (i, s) in shards.into_iter().enumerate() {
            if i == 0 || i == 3 {
                continue;
            }
            out = asm.ingest(s).unwrap().or(out);
        }
        assert_eq!(out.unwrap().1, f);
        assert_eq!(asm.recovered_via_parity(), 1);
    }

    #[test]
    fn insufficient_shards_never_deliver() {
        let cfg = FecConfig { data_shards: 4, parity_shards: 1 };
        let f = frame(100, 3);
        let shards = shard_frame(2, &f, cfg).unwrap();
        let mut asm = FrameAssembler::new();
        for s in shards.into_iter().take(3) {
            assert!(asm.ingest(s).unwrap().is_none());
        }
        assert_eq!(asm.pending_count(), 1);
    }

    #[test]
    fn duplicates_and_late_shards_are_ignored() {
        let cfg = FecConfig { data_shards: 2, parity_shards: 1 };
        let f = frame(64, 4);
        let shards = shard_frame(3, &f, cfg).unwrap();
        let mut asm = FrameAssembler::new();
        assert!(asm.ingest(shards[0].clone()).unwrap().is_none());
        assert!(asm.ingest(shards[0].clone()).unwrap().is_none(), "duplicate");
        assert!(asm.ingest(shards[1].clone()).unwrap().is_some());
        assert!(asm.ingest(shards[2].clone()).unwrap().is_none(), "late shard of delivered frame");
    }

    #[test]
    fn interleaved_frames_reassemble_independently() {
        let cfg = FecConfig::default();
        let f1 = frame(1500, 5);
        let f2 = frame(900, 6);
        let s1 = shard_frame(10, &f1, cfg).unwrap();
        let s2 = shard_frame(11, &f2, cfg).unwrap();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for (a, b) in s1.into_iter().zip(s2) {
            if let Some(x) = asm.ingest(a).unwrap() {
                got.push(x);
            }
            if let Some(x) = asm.ingest(b).unwrap() {
                got.push(x);
            }
        }
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (10, f1));
        assert_eq!(got[1], (11, f2));
    }

    #[test]
    fn shard_sizes_cover_frame_with_minimal_padding() {
        let cfg = FecConfig { data_shards: 8, parity_shards: 2 };
        let f = frame(1001, 7);
        let shards = shard_frame(0, &f, cfg).unwrap();
        // ceil(1001/8) = 126 bytes per shard.
        assert!(shards.iter().all(|s| s.payload.len() == 126));
        assert_eq!(shards[0].wire_bytes(), 126 + 17);
        assert!((cfg.overhead() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_frame_is_rejected() {
        assert!(shard_frame(0, &[], FecConfig::default()).is_err());
    }

    #[test]
    fn bogus_shard_index_is_an_error() {
        let cfg = FecConfig { data_shards: 2, parity_shards: 1 };
        let mut s = shard_frame(0, &frame(10, 8), cfg).unwrap().remove(0);
        s.index = 99;
        assert!(FrameAssembler::new().ingest(s).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_any_k_shards_reassemble(
            len in 1usize..3000,
            k in 1usize..12,
            m in 0usize..5,
            seed in any::<u64>(),
        ) {
            let cfg = FecConfig { data_shards: k, parity_shards: m };
            let f = frame(len, seed);
            let shards = shard_frame(1, &f, cfg).unwrap();
            let mut idx: Vec<usize> = (0..k + m).collect();
            let mut rng = DetRng::new(seed ^ 0xabcd);
            rng.shuffle(&mut idx);
            let mut asm = FrameAssembler::new();
            let mut out = None;
            for &i in idx.iter().take(k) {
                out = asm.ingest(shards[i].clone()).unwrap().or(out);
            }
            prop_assert_eq!(out.unwrap().1, f);
        }
    }
}
