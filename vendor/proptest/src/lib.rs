//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the property-test style this workspace uses:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn prop_holds(x in 0.0..1.0f64, n in any::<u64>()) {
//!         prop_assert!(x < 1.0, "x was {}", x);
//!     }
//! }
//! ```
//!
//! Differences from real proptest, deliberate for an offline shim:
//! - no shrinking — a failing case reports its case number and input seed so
//!   it can be replayed, but is not minimized;
//! - value generation is fully deterministic (fixed base seed mixed with the
//!   case index), so failures reproduce across runs and machines;
//! - `prop_assert!`/`prop_assert_eq!` panic like `assert!` instead of
//!   returning `Err` (equivalent observable behavior without shrinking).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Items a test module imports with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Test-runner configuration, mirroring `proptest::test_runner::Config`.
pub mod test_runner {
    /// How many random cases each property test executes.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; the shim trims that to keep the
            // full-workspace test suite fast while still exploring broadly.
            Config { cases: 96 }
        }
    }
}

/// Deterministic generator state handed to strategies.
///
/// xoshiro256++ seeded via splitmix64 — small, fast, and stable across
/// platforms so failing cases replay identically everywhere.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { state: [next(), next(), next(), next()] }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        self.state = [s0, s1, s2, s3.rotate_left(45)];
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire).
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        if bound == 1 {
            return 0;
        }
        loop {
            let x = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            // Top limb of the 256-bit product x * bound, computed in halves.
            let (x_hi, x_lo) = (x >> 64, x & u128::from(u64::MAX));
            let (b_hi, b_lo) = (bound >> 64, bound & u128::from(u64::MAX));
            let lo_lo = x_lo * b_lo;
            let mid1 = x_hi * b_lo + (lo_lo >> 64);
            let mid2 = x_lo * b_hi + (mid1 & u128::from(u64::MAX));
            let hi = x_hi * b_hi + (mid1 >> 64) + (mid2 >> 64);
            let low = (mid2 << 64) | (lo_lo & u128::from(u64::MAX));
            // Rejection zone keeps the distribution exactly uniform; it is
            // vanishingly small for every bound this shim sees.
            if low >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }
}

/// Strategy machinery: how `x in <expr>` expressions produce values.
pub mod strategy {
    use super::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type this strategy yields.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every drawn value with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

use strategy::Strategy;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.next_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over a type's full value domain, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted length specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// Strategy yielding `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Executes one property across many deterministic cases. Used by the
/// [`proptest!`] expansion; not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases(
    config: &test_runner::Config,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng),
) {
    // Mix the test name into the base seed so sibling tests explore
    // different sequences while each stays reproducible.
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        name_hash ^= u64::from(b);
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for index in 0..config.cases {
        let seed = name_hash ^ (u64::from(index)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest shim: {test_name} failed at case {index}/{} (replay seed {seed:#x})",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines property tests: each `x in strategy` parameter is sampled per
/// case, then the body runs. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                $body
            });
        }

        $crate::__proptest_body! { ($config) $($rest)* }
    };
}

/// Property assertion; panics with location and message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics with both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..2000 {
            let v = Strategy::sample(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
            let i = Strategy::sample(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = crate::TestRng::new(42);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_grammar_with_config(v in crate::collection::vec((0u32..20, any::<bool>()), 0..50)) {
            prop_assert!(v.len() < 50);
            for (n, _flag) in v {
                prop_assert!(n < 20);
            }
        }
    }

    proptest! {
        #[test]
        fn macro_grammar_default_config(seed in any::<u64>(), x in 0.0..1.0f64) {
            let _ = seed;
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn second_function_in_same_block(n in 1usize..4) {
            prop_assert_eq!(n.clamp(1, 3), n);
        }
    }
}
