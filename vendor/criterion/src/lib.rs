//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Keeps the measurement discipline that matters — warmup, calibrated
//! batch sizes, many timed samples, median-based reporting — while dropping
//! the statistical machinery (bootstrap confidence intervals, regression
//! detection, HTML plots) that needs external crates.
//!
//! Covered surface: [`Criterion`], [`BenchmarkGroup`] (`sample_size`,
//! `throughput`, `bench_function`, `finish`), [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`Throughput`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark writes machine-readable estimates to
//! `target/criterion/<id>/estimates.json` so CI can archive results.
//!
//! Tunables via environment (all optional): `CRITERION_WARMUP_MS` (default
//! 20), `CRITERION_SAMPLE_MS` (target wall-time per sample, default 10).
//! A positional CLI argument acts as a substring filter on benchmark ids,
//! matching `cargo bench <filter>`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier; re-export of the stabilized std equivalent.
pub use std::hint::black_box;

/// Work-per-iteration declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// How `iter_batched` amortizes setup, mirroring criterion's enum.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Pre-build a large batch of inputs per sample.
    SmallInput,
    /// Pre-build a small batch of inputs per sample.
    LargeInput,
    /// Run setup before every single iteration, untimed.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver configured from the process arguments: flags are
    /// ignored, the first positional argument becomes an id filter.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "Benchmark" && a != "bench");
        Criterion { filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id, 20, None, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named set of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration work so results also report throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &full_id, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group. (Reports are emitted per benchmark; this exists for
    /// API compatibility.)
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples_ns_per_iter: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Benchmarks `routine`, timing batches of calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let iters = self.calibrate(|n| {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            start.elapsed()
        });
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.push_sample(start.elapsed(), iters);
        }
    }

    /// Benchmarks `routine` on inputs built by `setup`; setup time is never
    /// included in the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let iters = self.calibrate(|n| {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            start.elapsed()
        });
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.push_sample(start.elapsed(), iters);
        }
    }

    /// Warms up and picks an iteration count per sample so one sample lasts
    /// roughly `CRITERION_SAMPLE_MS`.
    fn calibrate(&mut self, mut run_batch: impl FnMut(u64) -> Duration) -> u64 {
        let warmup = Duration::from_millis(env_ms("CRITERION_WARMUP_MS", 20));
        let target_sample = Duration::from_millis(env_ms("CRITERION_SAMPLE_MS", 10));
        let warmup_start = Instant::now();
        let mut iters = 1u64;
        let last_per_iter_ns;
        loop {
            let elapsed = run_batch(iters);
            if warmup_start.elapsed() >= warmup {
                last_per_iter_ns = (elapsed.as_nanos() as f64 / iters as f64).max(0.5);
                break;
            }
            // Grow batches until a single batch is a meaningful slice of the
            // warmup window, so calibration converges for fast routines.
            if elapsed < warmup / 4 {
                iters = iters.saturating_mul(2);
            }
        }
        let iters = ((target_sample.as_nanos() as f64 / last_per_iter_ns) as u64).max(1);
        self.iters_per_sample = iters;
        iters
    }

    fn push_sample(&mut self, elapsed: Duration, iters: u64) {
        self.samples_ns_per_iter.push(elapsed.as_nanos() as f64 / iters as f64);
    }
}

fn env_ms(var: &str, default: u64) -> u64 {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn run_benchmark<F>(
    criterion: &Criterion,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if !criterion.matches(id) {
        return;
    }
    let mut bencher = Bencher { sample_size, samples_ns_per_iter: Vec::new(), iters_per_sample: 1 };
    f(&mut bencher);
    if bencher.samples_ns_per_iter.is_empty() {
        eprintln!("{id}: no measurement taken (benchmark closure never called iter)");
        return;
    }
    let mut sorted = bencher.samples_ns_per_iter.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };

    let mut line =
        format!("{id:<50} time: [{} {} {}]", format_ns(min), format_ns(median), format_ns(max));
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 * (1e9 / median);
        match t {
            Throughput::Bytes(bytes) => {
                line.push_str(&format!("  thrpt: {:.2} MiB/s", per_sec(bytes) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");

    write_estimates(id, min, median, max, &bencher, throughput);
}

/// Persists estimates under `target/criterion/<id>/estimates.json`.
fn write_estimates(
    id: &str,
    min: f64,
    median: f64,
    max: f64,
    bencher: &Bencher,
    throughput: Option<Throughput>,
) {
    // `cargo bench` sets the bench binary's CWD to the *package* root; pin
    // reports to the shared workspace target dir so CI can find them.
    let root = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .or_else(|| {
            let manifest = std::env::var_os("CARGO_MANIFEST_DIR")?;
            let manifest = std::path::PathBuf::from(manifest);
            manifest
                .ancestors()
                .find(|a| a.join("Cargo.lock").is_file())
                .map(|root| root.join("target"))
        })
        .unwrap_or_else(|| std::path::PathBuf::from("target"));
    let mut dir = root.join("criterion");
    for segment in id.split('/') {
        let clean: String = segment
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        dir.push(clean);
    }
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let throughput_field = match throughput {
        Some(Throughput::Bytes(b)) => format!(",\n  \"throughput_bytes\": {b}"),
        Some(Throughput::Elements(n)) => format!(",\n  \"throughput_elements\": {n}"),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"id\": {id:?},\n  \"median_ns\": {median},\n  \"min_ns\": {min},\n  \
         \"max_ns\": {max},\n  \"samples\": {},\n  \"iters_per_sample\": {}{}\n}}\n",
        bencher.samples_ns_per_iter.len(),
        bencher.iters_per_sample,
        throughput_field,
    );
    let _ = std::fs::write(dir.join("estimates.json"), json);
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_median() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut calls = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion { filter: Some("only_this".into()) };
        let mut ran = false;
        c.bench_function("something_else", |_b| ran = true);
        assert!(!ran);
    }
}
