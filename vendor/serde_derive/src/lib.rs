//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! shim.
//!
//! The build environment has no crates.io access, so this macro is written
//! against the compiler's built-in `proc_macro` API alone — no `syn`, no
//! `quote`. It supports exactly the container shapes this workspace uses:
//!
//! - structs with named fields (`#[serde(deny_unknown_fields)]` accepted;
//!   unknown fields are always rejected either way);
//! - tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! - unit structs;
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   serde's default representation).
//!
//! Generics, lifetimes, and field-level serde attributes are unsupported and
//! rejected with a compile error rather than miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
enum Input {
    Struct { name: String, generics: Vec<String>, fields: Fields },
    Enum { name: String, generics: Vec<String>, variants: Vec<(String, Fields)> },
}

impl Input {
    /// `impl<T: Bound, ...>` generics plus the `Name<T, ...>` target type.
    fn impl_parts(&self, bound: &str) -> (String, String) {
        let (name, generics) = match self {
            Input::Struct { name, generics, .. } | Input::Enum { name, generics, .. } => {
                (name, generics)
            }
        };
        if generics.is_empty() {
            return (String::new(), name.clone());
        }
        let bounded: Vec<String> =
            generics.iter().map(|g| format!("{g}: ::serde::{bound}")).collect();
        (format!("<{}>", bounded.join(", ")), format!("{}<{}>", name, generics.join(", ")))
    }
}

/// Field list of a struct or enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen(&parsed).parse().expect("derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos)?;
    let name = expect_ident(&tokens, &mut pos)?;
    let generics = parse_generics(&tokens, &mut pos, &name)?;
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("serde shim: unsupported struct body: {other:?}")),
            };
            Ok(Input::Struct { name, generics, fields })
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("serde shim: unsupported enum body: {other:?}")),
            };
            Ok(Input::Enum { name, generics, variants: parse_variants(body)? })
        }
        other => Err(format!("serde shim: cannot derive for `{other}`")),
    }
}

/// Parses an optional `<A, B, ...>` list of plain type parameters. Bounds,
/// defaults, lifetimes, and const generics are rejected: the shim generates
/// `P: ::serde::Serialize`-style bounds itself and supports nothing fancier.
fn parse_generics(
    tokens: &[TokenTree],
    pos: &mut usize,
    name: &str,
) -> Result<Vec<String>, String> {
    let mut generics = Vec::new();
    if !matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Ok(generics);
    }
    *pos += 1;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                *pos += 1;
                return Ok(generics);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => *pos += 1,
            Some(TokenTree::Ident(i)) => {
                generics.push(i.to_string());
                *pos += 1;
            }
            other => {
                return Err(format!(
                    "serde shim: `{name}` has unsupported generics (found {other:?}); \
                     only plain type parameters are supported"
                ));
            }
        }
    }
}

/// Skips `#[...]` attribute groups (including doc comments).
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *pos += 1;
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            Ok(i.to_string())
        }
        other => Err(format!("serde shim: expected identifier, found {other:?}")),
    }
}

/// Skips one type expression: everything until a top-level `,` (angle
/// brackets tracked manually; parens/brackets arrive as groups).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut names = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("serde shim: expected `:` after field, got {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // the separating comma, if any
        names.push(name);
    }
    Ok(Fields::Named(names))
}

/// Counts fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos)?;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                parse_named_fields(g.stream())?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde shim: explicit discriminant on variant `{name}` is not supported"
                ));
            }
            None => {}
            other => return Err(format!("serde shim: unexpected token after variant: {other:?}")),
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, ty) = input.impl_parts("Serialize");
    match input {
        Input::Struct { fields, .. } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => named_fields_to_object(names, "self."),
            };
            format!(
                "impl{impl_generics} ::serde::Serialize for {ty} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants, .. } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(String::from({vname:?})),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert(String::from({vname:?}), {inner});\n\
                                 ::serde::Value::Object(__m)\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fnames) => {
                        let inner = named_fields_to_object(fnames, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert(String::from({vname:?}), {inner});\n\
                                 ::serde::Value::Object(__m)\n\
                             }}\n",
                            fnames.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl{impl_generics} ::serde::Serialize for {ty} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Builds `{{ let mut m; m.insert(...); Value::Object(m) }}` for named
/// fields, reading each field through `accessor` (`self.` or a bound name).
fn named_fields_to_object(names: &[String], accessor: &str) -> String {
    let mut out = String::from("{ let mut __m = ::serde::Map::new();\n");
    for f in names {
        out.push_str(&format!(
            "__m.insert(String::from({f:?}), ::serde::Serialize::to_value(&{accessor}{f}));\n"
        ));
    }
    out.push_str("::serde::Value::Object(__m) }");
    out
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_generics, ty) = input.impl_parts("Deserialize");
    match input {
        Input::Struct { name, fields, .. } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match __v {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         __other => Err(::serde::Error::custom(format!(\n\
                             \"invalid type: {{}}, expected null\", __other.kind()))),\n\
                     }}"
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::__private::tuple_item(__items, {i}, {name:?})?"))
                        .collect();
                    format!(
                        "{{\n\
                             let __items = match __v {{\n\
                                 ::serde::Value::Array(items) => items.as_slice(),\n\
                                 __other => return Err(::serde::Error::custom(format!(\n\
                                     \"invalid type: {{}}, expected array\", __other.kind()))),\n\
                             }};\n\
                             Ok({name}({}))\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(fnames) => named_fields_from_object(name, fnames, name),
            };
            format!(
                "impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants, .. } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                    }
                    Fields::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "{vname:?} => Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::__private::tuple_item(__items, {i}, {name:?})?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let __items = match __inner {{\n\
                                     ::serde::Value::Array(items) => items.as_slice(),\n\
                                     __other => return Err(::serde::Error::custom(format!(\n\
                                         \"invalid type: {{}}, expected array\", \
                                         __other.kind()))),\n\
                                 }};\n\
                                 Ok({name}::{vname}({}))\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fnames) => {
                        let build =
                            named_fields_from_object(&format!("{name}::{vname}"), fnames, name);
                        data_arms
                            .push_str(&format!("{vname:?} => {{ let __v = __inner; {build} }}\n"));
                    }
                }
            }
            format!(
                "impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __inner) = __m.iter().next().unwrap();\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\n\
                                     __other => Err(::serde::Error::custom(format!(\n\
                                         \"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::Error::custom(format!(\n\
                                 \"invalid type: {{}}, expected {name} variant\", \
                                 __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Builds deny-unknown-fields object deserialization producing
/// `constructor { f: ..., ... }`.
fn named_fields_from_object(constructor: &str, fnames: &[String], ty: &str) -> String {
    let field_list: Vec<String> = fnames.iter().map(|f| format!("{f:?}")).collect();
    let mut build = String::new();
    for f in fnames {
        build.push_str(&format!("{f}: ::serde::__private::field(__obj, {f:?}, {ty:?})?,\n"));
    }
    format!(
        "{{\n\
             let __obj = ::serde::__private::as_object(__v, {ty:?})?;\n\
             ::serde::__private::deny_unknown(__obj, &[{}], {ty:?})?;\n\
             Ok({constructor} {{\n{build}}})\n\
         }}",
        field_list.join(", ")
    )
}
