//! Offline drop-in subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the narrow slice of serde it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, `#[serde(deny_unknown_fields)]`,
//! and JSON round-trips through `serde_json`.
//!
//! Unlike real serde, this shim is not format-generic: [`Serialize`] produces
//! a JSON-shaped [`Value`] tree directly and [`Deserialize`] consumes one.
//! That is exactly the data model every consumer in this workspace needs
//! (`serde_json::to_string*` / `serde_json::from_str`), and it keeps the
//! derive macro small enough to hand-roll without `syn`.
//!
//! Semantics intentionally mirrored from serde:
//! - structs serialize to objects with declaration-ordered fields;
//! - newtype structs serialize transparently as their inner value;
//! - unit enum variants serialize as strings, data variants as
//!   single-key objects (externally tagged);
//! - missing `Option` fields deserialize to `None`;
//! - unknown fields are always rejected (serde's `deny_unknown_fields` —
//!   this shim applies it to every container, which is strictly stricter).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Object representation: key-ordered map, matching real serde_json's
/// default `BTreeMap` backing so serialized output is deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON-shaped value tree: the single data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (covers `u8`–`u128`).
    UInt(u128),
    /// Negative integer (always `< 0`; non-negative values use [`Value::UInt`]).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministic key order.
    Object(Map),
}

impl Value {
    /// Borrows the object map if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a rendered message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON data model.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the JSON data model.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field of this type is absent from its object.
    ///
    /// Errors by default; `Option<T>` overrides this to yield `None`,
    /// mirroring serde_derive's implicit-optional treatment.
    fn from_missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range"))),
                    other => Err(Error::custom(format!(
                        "invalid type: {}, expected unsigned integer",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i128;
                if n >= 0 { Value::UInt(n as u128) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i128 = match v {
                    Value::UInt(u) => i128::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    Value::Int(i) => *i,
                    other => {
                        return Err(Error::custom(format!(
                            "invalid type: {}, expected integer",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::custom(format!(
                        "invalid type: {}, expected number",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => {
                Err(Error::custom(format!("invalid type: {}, expected boolean", other.kind())))
            }
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("invalid type: {}, expected string", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => {
                Err(Error::custom(format!("invalid type: {}, expected character", other.kind())))
            }
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("array of length {N} found length {n}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("invalid type: {}, expected array", other.kind()))),
        }
    }
}

/// Renders a map key's serialized form as an object-field name, mirroring
/// serde_json: string keys pass through, integer-shaped keys (including
/// transparent newtypes over integers) render as their decimal text.
///
/// # Panics
///
/// Panics if the key serializes to a non-scalar value, which serde_json
/// rejects at runtime too ("key must be a string").
fn key_to_string(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        other => panic!("map key must serialize to a string or integer, got {}", other.kind()),
    }
}

/// Recovers a key from an object-field name by retrying the scalar shapes
/// [`key_to_string`] can produce.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u128>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i128>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("invalid object key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter().map(|(k, v)| (key_to_string(&k.to_value()), v.to_value())).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                m.iter().map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?))).collect()
            }
            other => Err(Error::custom(format!("invalid type: {}, expected object", other.kind()))),
        }
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => {
                        return Err(Error::custom(format!(
                            "invalid type: {}, expected tuple array",
                            other.kind()
                        )))
                    }
                };
                let expected = 0usize $(+ { let _ = $idx; 1 })+;
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "tuple of length {} found array of length {}",
                        expected,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support machinery invoked by derive-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Map, Value};

    pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v Map, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("invalid type: {}, expected {ty}", v.kind())))
    }

    pub fn deny_unknown(obj: &Map, fields: &[&str], ty: &str) -> Result<(), Error> {
        for key in obj.keys() {
            if !fields.contains(&key.as_str()) {
                return Err(Error::custom(format!("unknown field `{key}` in {ty}")));
            }
        }
        Ok(())
    }

    pub fn field<T: Deserialize>(obj: &Map, name: &str, ty: &str) -> Result<T, Error> {
        match obj.get(name) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}"))),
            None => T::from_missing_field(name),
        }
    }

    pub fn tuple_item<T: Deserialize>(items: &[Value], idx: usize, ty: &str) -> Result<T, Error> {
        let v = items
            .get(idx)
            .ok_or_else(|| Error::custom(format!("{ty}: missing tuple element {idx}")))?;
        T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{idx}: {e}")))
    }
}
