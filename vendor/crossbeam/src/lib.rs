//! Offline drop-in subset of the `crossbeam` API.
//!
//! Covers only `crossbeam::thread::scope`, implemented on top of
//! `std::thread::scope` (stabilized in Rust 1.63, after crossbeam's scoped
//! threads were designed). The observable contract is preserved: spawned
//! threads may borrow from the enclosing stack frame, the scope joins all of
//! them before returning, and the result is `Err` if any spawned thread
//! panicked.

#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle passed to the `scope` closure and to each spawned closure.
    ///
    /// crossbeam hands every spawned thread a `&Scope` so it can spawn
    /// further siblings; this shim keeps the same shape.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope again, so
        /// nested spawns work exactly as with crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a thread scope, joining every spawned thread before
    /// returning. `Err` carries the first panic payload, as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn threads_borrow_and_join() {
            let mut slots = vec![0u64; 4];
            super::scope(|scope| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    scope.spawn(move |_| *slot = i as u64 + 1);
                }
            })
            .expect("no panics");
            assert_eq!(slots, vec![1, 2, 3, 4]);
        }

        #[test]
        fn panic_in_child_becomes_err() {
            let result = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(result.is_err());
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let out = std::sync::Mutex::new(Vec::new());
            super::scope(|scope| {
                scope.spawn(|inner| {
                    inner.spawn(|_| out.lock().unwrap().push(1));
                });
            })
            .expect("no panics");
            assert_eq!(*out.lock().unwrap(), vec![1]);
        }
    }
}
