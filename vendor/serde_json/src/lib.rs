//! Offline drop-in subset of the `serde_json` API.
//!
//! Pairs with the vendored `serde` shim, whose data model is already a
//! JSON-shaped [`Value`] tree: serialization renders that tree as text and
//! deserialization parses text back into it, then hands the tree to
//! `Deserialize::from_value`.
//!
//! Covered surface (exactly what this workspace calls): [`to_string`],
//! [`to_string_pretty`], [`from_str`], and the [`Value`] type.
//!
//! Formatting matches real serde_json where observable: objects render with
//! key-ordered fields (the shim's object map is a `BTreeMap`), floats use
//! Rust's shortest round-trip display, and pretty output indents by two
//! spaces.

#![forbid(unsafe_code)]

pub use serde::{Error, Map, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into any shim-`Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!("trailing characters at offset {}", parser.pos)));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Writes a float the way serde_json does: finite values via the shortest
/// round-trip decimal, with a `.0` suffix when that decimal looks integral.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at offset {}", byte as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid escape"))?);
                            // parse_hex4 leaves pos on the byte after the
                            // escape; skip the shared advance below.
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::custom(format!("invalid \\u escape `{hex}`")))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let doc = r#"{"a": [1, -2, 3.5], "b": {"nested": true}, "c": null, "d": "x\ny"}"#;
        let v: Value = from_str(doc).unwrap();
        let compact = to_string(&v).unwrap();
        let reparsed: Value = from_str(&compact).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn float_formatting_keeps_float_typing() {
        assert_eq!(to_string(&4.0f64).unwrap(), "4.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        let back: f64 = from_str("4.0").unwrap();
        assert_eq!(back, 4.0);
    }

    #[test]
    fn pretty_output_indents_by_two() {
        let v: Value = from_str(r#"{"k": [1]}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_trailing_garbage_and_unknown_tokens() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".to_string()));
    }
}
