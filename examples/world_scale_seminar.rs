//! A world-scale seminar: one instructor, learners on every continent.
//!
//! Demonstrates the scalability machinery of §3.3 — interest-managed
//! fan-out keeps per-learner bandwidth flat while the naive alternative
//! (modelled analytically here; measured in experiment E3) grows with the
//! class — and shows the latency geography of a single central cloud.
//!
//! Run with: `cargo run --release --example world_scale_seminar`

use metaclassroom::core::{Activity, Role, SessionBuilder};
use metaclassroom::netsim::{LinkClass, Region, SimDuration};

fn main() {
    let cohorts = [
        (Region::EastAsia, 30u32),
        (Region::SoutheastAsia, 20),
        (Region::SouthAsia, 15),
        (Region::Europe, 15),
        (Region::NorthAmerica, 10),
        (Region::SouthAmerica, 5),
        (Region::Oceania, 3),
        (Region::Africa, 2),
    ];
    let mut builder = SessionBuilder::new()
        .seed(7)
        .activity(Activity::Seminar)
        .cloud_region(Region::EastAsia)
        .campus("HKUST-CWB", Region::EastAsia, 6, true);
    for (region, n) in cohorts {
        builder = builder.remote_cohort(region, n, LinkClass::ResidentialAccess);
    }
    let mut session = builder.build();

    let learners = session
        .participants()
        .iter()
        .filter(|p| matches!(p.role, Role::RemoteLearner { .. }))
        .count();
    println!("running a 15 s seminar with {learners} remote learners worldwide...");
    session.run_for(SimDuration::from_secs(15));

    let report = session.report();
    println!("\n{report}");
    println!(
        "per-learner downstream: {:.1} kbit/s (interest-managed; a naive \
         all-to-all fan-out would ship ~{:.0} kbit/s to each of them)",
        report.fanout_bandwidth_bps() / learners as f64 / 1e3,
        // Naive: every avatar, full 46-byte frames + headers, 60 Hz.
        (learners + 7) as f64 * 74.0 * 8.0 * 60.0 / 1e3,
    );
    println!(
        "VR display latency: p50 {:.0} ms, p99 {:.0} ms (the tail is the far \
         side of the planet — see experiment E4 for the regional-server fix)",
        report.vr_display_latency.p50 as f64 / 1e6,
        report.vr_display_latency.p99 as f64 / 1e6,
    );
}
