//! The paper's unit case (Figure 2): a lecture shared between the HKUST
//! Clear Water Bay and Guangzhou campuses, with remote learners from KAIST,
//! MIT, and Cambridge attending through the cloud VR classroom.
//!
//! Prints the analytic per-hop latency budget for every Figure-3 path, then
//! runs the session and prints the measured counterpart, the classroom
//! state as seen from each room, and the modality comparison of Figure 1.
//!
//! Run with: `cargo run --release --example hybrid_lecture`

use metaclassroom::core::{
    mr_to_mr_budget, mr_to_vr_budget, vr_to_mr_budget, Activity, Role, SessionBuilder,
    TeachingModality,
};
use metaclassroom::edge::{CloudServerNode, EdgeServerNode};
use metaclassroom::netsim::{LinkClass, Region, SimDuration};

fn main() {
    let mut session = SessionBuilder::new()
        .seed(2022)
        .activity(Activity::Lecture)
        .cloud_region(Region::EastAsia)
        .campus("HKUST-CWB", Region::EastAsia, 12, true)
        .campus("HKUST-GZ", Region::EastAsia, 10, false)
        .remote_cohort(Region::EastAsia, 4, LinkClass::ResidentialAccess) // KAIST
        .remote_cohort(Region::NorthAmerica, 3, LinkClass::ResidentialAccess) // MIT
        .remote_cohort(Region::Europe, 3, LinkClass::ResidentialAccess) // Cambridge
        .build();

    println!("== analytic per-hop budgets (Figure 3) ==\n");
    let tick = session.config().server.tick;
    println!("{}", mr_to_mr_budget(Region::EastAsia, Region::EastAsia, tick));
    println!("{}", mr_to_vr_budget(Region::EastAsia, Region::EastAsia, Region::NorthAmerica, tick));
    println!("{}", vr_to_mr_budget(Region::Europe, Region::EastAsia, Region::EastAsia));

    println!("running a 30 s hybrid lecture with {} participants...", session.participants().len());
    session.run_for(SimDuration::from_secs(30));
    println!("\n== measured ==\n\n{}", session.report());

    // What each room sees.
    let edges: Vec<_> = session.edges().to_vec();
    for (i, edge) in edges.iter().enumerate() {
        let name = &session.campuses()[i].name;
        let server = session.sim().node_as::<EdgeServerNode>(*edge).unwrap();
        println!(
            "{name}: {} remote avatars seated locally ({} seats occupied)",
            server.remote_count(),
            server.seats().occupancy(),
        );
    }
    let cloud = session.sim().node_as::<CloudServerNode>(session.cloud()).unwrap();
    println!("cloud VR classroom population: {}", cloud.population());

    let presenters =
        session.participants().iter().filter(|p| matches!(p.role, Role::Presenter { .. })).count();
    println!("presenters on podiums: {presenters}");

    println!("\n== the survey's modality comparison (Figure 1) ==\n");
    println!(
        "{:<24} {:>8} {:>10} {:>8} {:>11}",
        "modality", "remote", "immersive", "blended", "engagement"
    );
    for m in TeachingModality::ALL {
        println!(
            "{:<24} {:>8} {:>10} {:>8} {:>11.2}",
            m.to_string(),
            if m.remote_access() { "yes" } else { "no" },
            if m.immersive_3d() { "yes" } else { "no" },
            if m.blends_physical_and_virtual() { "yes" } else { "no" },
            m.engagement_score(),
        );
    }
}
