//! A comfort lab: how navigation settings and individual differences decide
//! who gets sick in the VR classroom (§3.3 "Navigation and Cybersickness").
//!
//! Runs the same 10-minute VR-classroom navigation trace for three user
//! profiles under three system conditions, with and without the speed
//! protector of ref [43].
//!
//! Run with: `cargo run --release --example comfort_lab`

use metaclassroom::comfort::{
    classroom_navigation_trace, run_study, susceptibility, ProtectorConfig, SystemConditions,
    UserProfile,
};
use metaclassroom::netsim::SimDuration;

fn main() {
    let trace = classroom_navigation_trace(600.0, 0.05, 42);
    let profiles = [
        (
            "young gamer",
            UserProfile { age: 21.0, gaming_hours_per_week: 20.0, prior_vr_exposure: 0.9 },
        ),
        ("average adult", UserProfile::average()),
        (
            "older novice",
            UserProfile { age: 58.0, gaming_hours_per_week: 0.0, prior_vr_exposure: 0.0 },
        ),
    ];
    let conditions = [
        ("well-tuned (30 ms, 72 fps)", SystemConditions::default()),
        (
            "laggy network (200 ms)",
            SystemConditions { latency: SimDuration::from_millis(200), ..Default::default() },
        ),
        ("overloaded GPU (30 fps)", SystemConditions { fps: 30.0, ..Default::default() }),
    ];

    println!("fuzzy susceptibility multipliers:");
    for (name, p) in &profiles {
        println!("  {name:<14} {:.2}", susceptibility(p));
    }

    println!(
        "\n{:<16} {:<26} {:>9} {:>10} {:>11} {:>10}",
        "profile", "condition", "raw", "severity", "protected", "severity"
    );
    for (pname, profile) in &profiles {
        for (cname, cond) in &conditions {
            let raw = run_study(profile, *cond, None, &trace, 0.05);
            let protected =
                run_study(profile, *cond, Some(ProtectorConfig::default()), &trace, 0.05);
            println!(
                "{:<16} {:<26} {:>9.1} {:>10} {:>11.1} {:>10}",
                pname,
                cname,
                raw.final_score,
                raw.severity.to_string(),
                protected.final_score,
                protected.severity.to_string(),
            );
        }
    }
    println!(
        "\nreading: scores are SSQ-like (0-100); the speed protector caps \
         displayed speed/acceleration, cutting the vestibular conflict dose."
    );
}
