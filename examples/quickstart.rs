//! Quickstart: the smallest useful blended classroom.
//!
//! One physical classroom at HKUST CWB, one remote learner in Europe, ten
//! simulated seconds of a lecture. Prints the session report: per-path
//! latencies, replication traffic, and dead-reckoning suppression.
//!
//! Run with: `cargo run --release --example quickstart`

use metaclassroom::core::SessionBuilder;
use metaclassroom::netsim::{LinkClass, Region, SimDuration};

fn main() {
    let mut session = SessionBuilder::new()
        .seed(2022)
        .campus("HKUST-CWB", Region::EastAsia, 8, true)
        .remote_cohort(Region::EastAsia, 2, LinkClass::ResidentialAccess)
        .build();

    println!("running a 10 s lecture with {} participants...", session.participants().len());
    session.run_for(SimDuration::from_secs(10));

    println!("\n{}", session.report());

    // The blueprint's interactivity bar: 100 ms (§3.3). With learners in the
    // same region as the campus, the whole loop fits; see the
    // world_scale_seminar example (and experiment E4) for what happens when
    // they are not.
    let p99_ms = session.report().mr_display_latency.p99 as f64 / 1e6;
    println!(
        "MR display p99 = {:.1} ms -> {} the 100 ms interactivity budget",
        p99_ms,
        if p99_ms < 100.0 { "within" } else { "OVER" }
    );
}
