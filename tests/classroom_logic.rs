//! Integration tests for the classroom-logic layer (§3.1 scenarios) wired
//! to a real session roster.

use metaclassroom::core::{
    can_view, form_breakout_teams, run_quiz, Activity, BreakoutMember, ContentKind, ContentLedger,
    QuizQuestion, Role, Scoreboard, SessionBuilder, ViewerContext, Visibility,
};
use metaclassroom::netsim::{LinkClass, Region, SimDuration};
use metaclassroom::xrinput::InputChannel;

fn session() -> metaclassroom::core::ClassroomSession {
    SessionBuilder::new()
        .seed(77)
        .activity(Activity::Seminar)
        .campus("CWB", Region::EastAsia, 6, true)
        .campus("GZ", Region::EastAsia, 4, false)
        .remote_cohort(Region::Europe, 3, LinkClass::ResidentialAccess)
        .remote_cohort(Region::NorthAmerica, 2, LinkClass::ResidentialAccess)
        .build()
}

/// Channel a participant would use: physical students get controllers,
/// remote learners type on keyboards or speak.
fn channel_for(role: Role, idx: usize) -> InputChannel {
    match role {
        Role::Student { .. } | Role::Presenter { .. } => InputChannel::Controller,
        Role::RemoteLearner { .. } => {
            if idx.is_multiple_of(2) {
                InputChannel::PhysicalKeyboard
            } else {
                InputChannel::Speech
            }
        }
    }
}

#[test]
fn quiz_over_the_session_roster() {
    let s = session();
    let roster: Vec<_> = s
        .participants()
        .iter()
        .enumerate()
        .map(|(i, p)| (p.avatar, channel_for(p.role, i)))
        .collect();
    let questions = vec![
        QuizQuestion {
            prompt: "define motion-to-photon latency".into(),
            answer_words: 8,
            time_limit_secs: 120.0,
        },
        QuizQuestion {
            prompt: "one cybersickness mitigation".into(),
            answer_words: 4,
            time_limit_secs: 60.0,
        },
    ];
    let report = run_quiz(&questions, &roster, 5);
    assert_eq!(report.answers.len(), roster.len() * questions.len());
    assert!(report.submission_rate > 0.8, "rate {}", report.submission_rate);

    // Award quiz points into the gamification scoreboard.
    let mut board = Scoreboard::new();
    for a in report.answers.iter().filter(|a| a.submitted) {
        board.award(a.avatar, 10);
    }
    assert!(board.ranking().len() >= roster.len() / 2);
}

#[test]
fn breakout_teams_blend_campuses_and_remotes() {
    let s = session();
    let members: Vec<BreakoutMember> = s
        .participants()
        .iter()
        .map(|p| BreakoutMember {
            avatar: p.avatar,
            region: match p.role {
                Role::RemoteLearner { region } => region,
                _ => Region::EastAsia,
            },
            physical: !matches!(p.role, Role::RemoteLearner { .. }),
        })
        .collect();
    let teams = form_breakout_teams(&members, 4);
    let placed: usize = teams.iter().map(|t| t.members.len()).sum();
    assert_eq!(placed, members.len());
    // With 11 physical and 5 remote members in 4 teams, every team can blend.
    let blended = teams.iter().filter(|t| t.is_blended()).count();
    assert!(blended >= teams.len() - 1, "{blended}/{} teams blended", teams.len());
}

#[test]
fn contributed_content_respects_enrolment_boundaries() {
    let s = session();
    let mut ledger = ContentLedger::new();
    let author = s.participants()[0].avatar;

    let slide =
        ledger.contribute(author, ContentKind::Slide, Visibility::ClassOnly, 80_000, s.time());
    let clip =
        ledger.contribute(author, ContentKind::Recording, Visibility::Public, 9_000_000, s.time());
    ledger.approve(slide).unwrap();
    ledger.approve(clip).unwrap();
    assert!(ledger.verify().is_ok());

    let classmate =
        ViewerContext { avatar: s.participants()[1].avatar, enrolled: true, group: None };
    let guest = ViewerContext {
        avatar: metaclassroom::avatar::AvatarId(42_000),
        enrolled: false,
        group: None,
    };

    assert_eq!(ledger.visible_to(&classmate).len(), 2);
    // Guests: no class slides, and recordings stay private even when public.
    assert_eq!(ledger.visible_to(&guest).len(), 0);
    assert!(!can_view(ledger.item(clip).unwrap(), &guest));

    // Credits accrued for both approvals.
    assert_eq!(
        ledger.credits_of(author),
        ContentKind::Slide.credit_value() + ContentKind::Recording.credit_value()
    );
}

#[test]
fn a_full_lesson_flow() {
    // Run a session, quiz the roster mid-way, collect contributions, and
    // verify the pieces compose without touching each other's invariants.
    let mut s = session();
    s.run_for(SimDuration::from_secs(3));
    let mid_report = s.report();
    assert!(mid_report.updates_sent > 0);

    let mut ledger = ContentLedger::new();
    let mut board = Scoreboard::new();
    for (i, p) in s.participants().iter().enumerate() {
        if i % 3 == 0 {
            let id = ledger.contribute(
                p.avatar,
                ContentKind::Annotation,
                Visibility::ClassOnly,
                512,
                s.time(),
            );
            ledger.approve(id).unwrap();
            board.award(p.avatar, 5);
        }
    }
    s.run_for(SimDuration::from_secs(2));
    let final_report = s.report();
    assert!(final_report.updates_sent > mid_report.updates_sent);
    assert!(ledger.verify().is_ok());
    assert_eq!(board.event_count() as usize, ledger.len());
    // The top contributor is deterministic.
    assert_eq!(
        ledger.leaderboard().first().map(|(a, _)| *a),
        board.ranking().first().map(|(a, _)| *a)
    );
}
