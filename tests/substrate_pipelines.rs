//! Cross-crate pipeline tests that bypass the session facade and wire the
//! substrates together directly — the seams a downstream user would touch.

use metaclassroom::avatar::{retarget, AnchorFrame, AvatarCodec, AvatarState, Pose, Quat, Vec3};
use metaclassroom::comfort::{ComfortConfig, SicknessAccumulator, Stimulus};
use metaclassroom::media::{shard_frame, FecConfig, FrameAssembler};
use metaclassroom::netsim::{DetRng, SimDuration, SimTime};
use metaclassroom::render::{assign_lods, DeviceProfile, RenderRequest};
use metaclassroom::sensors::{
    FusionConfig, HeadsetConfig, HeadsetModel, MotionScript, PoseFusion, Trajectory,
};
use metaclassroom::sync::{JitterBuffer, JitterBufferConfig, SnapshotReceiver, SnapshotSender};

/// Sensor → fusion → codec → network-ish loss → receiver → jitter buffer:
/// the entire avatar path, hand-assembled.
#[test]
fn full_avatar_pipeline_end_to_end() {
    let traj = Trajectory::new(
        MotionScript::Presenter {
            center: Vec3::new(10.0, 0.0, 2.0),
            area_half: Vec3::new(1.4, 0.0, 0.9),
        },
        99,
    );
    let mut headset = HeadsetModel::new(HeadsetConfig::default(), 1);
    let mut fusion = PoseFusion::new(FusionConfig::default());
    let mut tx = SnapshotSender::new(AvatarCodec::with_defaults(), 60);
    let mut rx = SnapshotReceiver::new(AvatarCodec::with_defaults());
    let mut buffer = JitterBuffer::new(JitterBufferConfig::default());
    let mut rng = DetRng::new(500);

    let mut delivered = 0u32;
    for i in 0..600u64 {
        let secs = i as f64 / 60.0;
        let now = SimTime::from_nanos((secs * 1e9) as u64);
        let truth = traj.state_at(secs);
        if let Some(m) = headset.measure_pose(&truth) {
            fusion.ingest(now, &m);
        }
        if !fusion.is_initialized() {
            continue;
        }
        let estimate = fusion.estimate_at(now);
        let frame = tx.encode(&estimate);
        // 5% loss on the "network".
        if rng.chance(0.05) {
            continue;
        }
        let arrival = now + SimDuration::from_millis(rng.range_u64(8, 25));
        if let Some(state) = rx.decode(&frame).expect("no codec error") {
            tx.on_ack(rx.ack_seq().unwrap());
            buffer.push(now, arrival, state);
            delivered += 1;
        } else if rx.take_keyframe_request() {
            tx.request_keyframe();
        }
    }
    assert!(delivered > 500, "delivered {delivered}");

    // Displayed state (buffered, delayed) still tracks ground truth within
    // the playout delay's worth of motion.
    let t_display = SimTime::from_secs(10);
    let shown = buffer.sample(t_display).expect("buffer primed");
    let truth_then = traj.state_at(10.0 - buffer.playout_delay().as_secs_f64());
    assert!(
        shown.position_error(&truth_then) < 0.25,
        "display error {:.3} m",
        shown.position_error(&truth_then)
    );
}

/// Retarget a tracked presenter into another room's podium, then feed the
/// result through the renderer's LOD planner.
#[test]
fn retarget_then_render_pipeline() {
    let traj = Trajectory::new(
        MotionScript::Presenter {
            center: Vec3::new(10.0, 0.0, 2.0),
            area_half: Vec3::new(1.4, 0.0, 0.9),
        },
        7,
    );
    let src = AnchorFrame::podium(Pose::new(Vec3::new(10.0, 0.0, 1.0), Quat::IDENTITY));
    let dst = AnchorFrame::podium(Pose::new(Vec3::new(4.0, 0.0, 12.0), Quat::from_yaw(1.2)));

    let mut requests = Vec::new();
    for i in 0..20 {
        let truth = traj.state_at(i as f64);
        let (moved, report) = retarget(&truth, &src, &dst);
        assert!(report.clamp_distance < 1.5, "presenter clamped {:.2} m", report.clamp_distance);
        requests.push(RenderRequest {
            id: metaclassroom::avatar::AvatarId(i),
            distance: moved.head.position.distance(Vec3::new(10.0, 1.6, 7.0)),
            importance: 1.0,
        });
    }
    let plan = assign_lods(&requests, &DeviceProfile::mr_headset(), 250_000);
    assert!(plan.achieved_fps >= 72.0 - 1e-9);
    assert!(plan.mean_fidelity > 0.4);
}

/// Video frames through FEC sharding and reassembly with random loss, plus
/// the comfort consequence of the resulting frame rate.
#[test]
fn video_loss_to_comfort_pipeline() {
    let cfg = FecConfig { data_shards: 8, parity_shards: 2 };
    let mut rng = DetRng::new(3);
    let mut asm = FrameAssembler::new();
    let mut delivered = 0u32;
    let frames = 120u32;
    for id in 0..frames {
        let frame = vec![id as u8; 6000];
        let shards = shard_frame(id as u64, &frame, cfg).expect("shardable");
        for s in shards {
            if rng.chance(0.08) {
                continue; // lost
            }
            if let Ok(Some(_)) = asm.ingest(s) {
                delivered += 1;
            }
        }
    }
    let delivery = delivered as f64 / frames as f64;
    assert!(delivery > 0.9, "delivered {delivery:.2}");

    // Displayed fps = source fps x delivery ratio; feed into comfort.
    let fps = 30.0 * delivery;
    let mut acc = SicknessAccumulator::new(ComfortConfig::default(), 1.0);
    let stim = Stimulus { virtual_speed: 2.0, fps, ..Stimulus::at_rest() };
    for _ in 0..60 {
        acc.step(1.0, &stim);
    }
    let with_loss = acc.score();
    let mut acc_clean = SicknessAccumulator::new(ComfortConfig::default(), 1.0);
    let clean = Stimulus { virtual_speed: 2.0, fps: 30.0, ..Stimulus::at_rest() };
    for _ in 0..60 {
        acc_clean.step(1.0, &clean);
    }
    assert!(with_loss >= acc_clean.score(), "lost frames can only worsen comfort");
}

/// Fault injection is replayable: the same seed and the same [`FaultPlan`]
/// produce byte-identical traces and metrics across independent runs.
///
/// [`FaultPlan`]: metaclassroom::netsim::FaultPlan
#[test]
fn fault_injected_runs_are_deterministic() {
    use metaclassroom::core::SessionBuilder;
    use metaclassroom::netsim::{FaultPlan, LinkClass, LossModel, NodeId, Region};

    fn run_once() -> (u64, Vec<(String, u64)>) {
        let mut session = SessionBuilder::new()
            .seed(0xFA17)
            .campus("CWB", Region::EastAsia, 3, true)
            .campus("GZ", Region::EastAsia, 2, false)
            .remote_cohort(Region::Europe, 1, LinkClass::ResidentialAccess)
            .build();
        let edges: Vec<NodeId> = session.edges().to_vec();
        let cloud = session.cloud();
        let plan = FaultPlan::new()
            .link_flap(edges[0], edges[1], SimTime::from_millis(400), SimTime::from_millis(900))
            .loss_burst(
                edges[0],
                cloud,
                SimTime::from_millis(500),
                SimTime::from_millis(1500),
                LossModel::Iid { p: 0.3 },
            )
            .latency_spike(
                edges[1],
                cloud,
                SimTime::from_millis(600),
                SimTime::from_millis(1400),
                SimDuration::from_millis(80),
            )
            .partition_window(
                &[&[edges[0]], &[edges[1], cloud]],
                SimTime::from_millis(1600),
                SimTime::from_millis(2000),
            )
            .crash(edges[1], SimTime::from_millis(2200), Some(SimTime::from_millis(2700)));
        session.sim_mut().enable_trace(200_000);
        session.sim_mut().apply_fault_plan(plan);
        session.run_for(SimDuration::from_secs(3));
        let fingerprint = session.sim().trace().expect("trace enabled").fingerprint();
        let counters =
            session.sim().metrics().counters().map(|(k, v)| (k.to_string(), v)).collect();
        (fingerprint, counters)
    }

    let (fp1, m1) = run_once();
    let (fp2, m2) = run_once();
    assert_eq!(fp1, fp2, "trace fingerprints diverged between identical runs");
    assert_eq!(m1, m2, "metrics diverged between identical runs");
    let count = |name: &str| m1.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0);
    assert_eq!(count("fault.injected"), 10, "all scheduled faults executed");
    assert!(count("net.link.flaps") > 0, "flap accounting reached the metrics");
    assert_eq!(count("net.node.crashes"), 1);
    assert_eq!(count("net.node.restarts"), 1);
}

/// The workspace's public types stay Send + Sync (threads can own sessions).
#[test]
fn key_types_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<metaclassroom::core::ClassroomSession>();
    assert_send::<metaclassroom::netsim::Simulation<u32>>();
    assert_send::<AvatarState>();
    assert_send::<AvatarCodec>();
}
