//! Workspace integration tests: the full blended classroom across crates.

use metaclassroom::core::{Activity, Role, SessionBuilder};
use metaclassroom::edge::{CloudServerNode, EdgeServerNode, HeadsetNode, RemoteClientNode};
use metaclassroom::netsim::{LinkClass, Region, SimDuration, SimTime};

fn unit_case(seed: u64) -> metaclassroom::core::ClassroomSession {
    SessionBuilder::new()
        .seed(seed)
        .activity(Activity::Lecture)
        .campus("CWB", Region::EastAsia, 6, true)
        .campus("GZ", Region::EastAsia, 5, false)
        .remote_cohort(Region::Europe, 2, LinkClass::ResidentialAccess)
        .remote_cohort(Region::EastAsia, 2, LinkClass::ResidentialAccess)
        .build()
}

#[test]
fn every_room_sees_every_participant() {
    let mut s = unit_case(1);
    s.run_for(SimDuration::from_secs(5));
    let total = s.participants().len(); // 12 physical + 4 remote

    // Cloud: everyone.
    let cloud_pop = s.sim().node_as::<CloudServerNode>(s.cloud()).unwrap().population();
    assert_eq!(cloud_pop, total);

    // Each edge: everyone not local to it.
    let edges = s.edges().to_vec();
    let locals = [7usize, 5usize];
    for (edge, local) in edges.iter().zip(locals) {
        let rc = s.sim().node_as::<EdgeServerNode>(*edge).unwrap().remote_count();
        assert_eq!(rc, total - local, "edge with {local} locals shows {rc}");
    }

    // Each remote client displays at least the physical participants.
    let clients: Vec<_> = s
        .participants()
        .iter()
        .filter(|p| matches!(p.role, Role::RemoteLearner { .. }))
        .map(|p| p.node)
        .collect();
    for c in clients {
        let shown = s.sim().node_as::<RemoteClientNode>(c).unwrap().displayed_count();
        assert!(shown >= 12, "client displays {shown}");
    }
}

#[test]
fn displayed_avatars_track_their_sources() {
    let mut s = unit_case(2);
    s.run_for(SimDuration::from_secs(5));
    let now = s.time();

    // Pick a CWB student; their headset knows ground truth.
    let student = s
        .participants()
        .iter()
        .find(|p| matches!(p.role, Role::Student { campus: 0 }))
        .copied()
        .unwrap();
    let truth = s.sim().node_as::<HeadsetNode>(student.node).unwrap().truth_at(now);

    // The GZ edge holds a retargeted copy. Retargeting moves the avatar to a
    // local seat, but local offsets (head height, posture) survive — compare
    // height above the seat, which retargeting preserves.
    let gz_edge = s.edges()[1];
    let server = s.sim().node_as::<EdgeServerNode>(gz_edge).unwrap();
    let copy = server.remote_state(student.avatar).expect("replicated");
    assert!(
        (copy.head.position.y - truth.head.position.y).abs() < 0.15,
        "head height diverged: {} vs {}",
        copy.head.position.y,
        truth.head.position.y
    );
    // Expression replicates verbatim (blendshape weights).
    assert!(copy.expression.max_abs_diff(&truth.expression) < 0.6);
}

#[test]
fn seeds_reproduce_and_differ() {
    let fingerprint = |seed| {
        let mut s = unit_case(seed);
        s.sim_mut().enable_trace(200_000);
        s.run_for(SimDuration::from_secs(2));
        s.sim().trace().unwrap().fingerprint()
    };
    assert_eq!(fingerprint(9), fingerprint(9), "same seed must replay identically");
    assert_ne!(fingerprint(9), fingerprint(10));
}

#[test]
fn inter_campus_outage_recovers() {
    let mut s = unit_case(3);
    s.run_for(SimDuration::from_secs(2));
    let edges = s.edges().to_vec();

    // Sever CWB ↔ GZ; CWB ↔ cloud stays up.
    s.sim_mut().set_connection_up(edges[0], edges[1], false);
    s.run_for(SimDuration::from_secs(3));
    assert!(s.sim().metrics().counter_value("net.dropped.down") > 0);

    // Heal and verify the GZ room still converges on fresh CWB state.
    s.sim_mut().set_connection_up(edges[0], edges[1], true);
    s.run_for(SimDuration::from_secs(3));
    let student = s
        .participants()
        .iter()
        .find(|p| matches!(p.role, Role::Student { campus: 0 }))
        .copied()
        .unwrap();
    let now = s.time();
    let truth_y =
        s.sim().node_as::<HeadsetNode>(student.node).unwrap().truth_at(now).head.position.y;
    let copy = s
        .sim()
        .node_as::<EdgeServerNode>(edges[1])
        .unwrap()
        .remote_state(student.avatar)
        .expect("still replicated");
    assert!((copy.head.position.y - truth_y).abs() < 0.2);
}

#[test]
fn lossy_cellular_learners_still_converge() {
    let mut s = SessionBuilder::new()
        .seed(4)
        .campus("CWB", Region::EastAsia, 4, true)
        .remote_cohort(Region::SouthAsia, 2, LinkClass::CellularAccess)
        .build();
    s.run_for(SimDuration::from_secs(8));
    let r = s.report();
    // Bursty cellular loss drops packets...
    assert!(r.net_dropped > 0, "expected loss on cellular access");
    // ...but ack-referenced deltas + keyframes keep clients converged.
    let client = s
        .participants()
        .iter()
        .find(|p| matches!(p.role, Role::RemoteLearner { .. }))
        .copied()
        .unwrap();
    let t = s.time();
    let first_avatar = s.participants()[0].avatar;
    let node = s.sim_mut().node_as_mut::<RemoteClientNode>(client.node).unwrap();
    assert!(node.displayed_count() >= 4);
    assert!(node.displayed_state(first_avatar, t).is_some());
}

#[test]
fn reports_round_trip_through_serde() {
    let mut s = unit_case(5);
    s.run_for(SimDuration::from_secs(1));
    let report = s.report();
    let json = serde_json::to_string(&report).expect("serializes");
    let back: metaclassroom::core::SessionReport =
        serde_json::from_str(&json).expect("deserializes");
    assert_eq!(report, back);
}

#[test]
fn long_session_stays_bounded() {
    // A 60-second session must not leak unbounded state: history maps are
    // pruned by acks, jitter buffers are capped.
    let mut s = SessionBuilder::new()
        .seed(6)
        .campus("CWB", Region::EastAsia, 3, false)
        .remote_cohort(Region::EastAsia, 1, LinkClass::ResidentialAccess)
        .build();
    s.run_for(SimDuration::from_secs(60));
    let r = s.report();
    assert!(r.delivery_ratio() > 0.95);
    assert!(s.time() == SimTime::from_secs(60));
    // Suppression keeps working over the long haul.
    assert!(r.suppression_ratio() > 0.2, "suppression {:.2}", r.suppression_ratio());
}
