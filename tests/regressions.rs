//! Replays the committed fault-schedule regression corpus.
//!
//! Every `tests/regressions/*.json` is a [`RegressionCase`]: a minimal fault
//! schedule (shrunk by the simcheck explorer, or synthesized as the smallest
//! schedule exercising one fault family) pinned to a session seed and an
//! expected outcome. Replaying them here keeps once-fixed failure modes fixed
//! and the on-disk schema stable.
//!
//! To regenerate the corpus after an intentional schema change:
//!
//! ```text
//! cargo test --test regressions regenerate_corpus -- --ignored
//! ```

use std::path::PathBuf;

use metaclass_simcheck::{FaultWindow, RegressionCase, SCHEMA_VERSION};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

fn load_corpus() -> Vec<(String, RegressionCase)> {
    let mut cases = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/regressions exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let json = std::fs::read_to_string(&path).expect("readable case");
            let case = RegressionCase::from_json(&json)
                .unwrap_or_else(|e| panic!("{name}: bad regression case: {e}"));
            cases.push((name, case));
        }
    }
    cases.sort_by(|a, b| a.0.cmp(&b.0));
    cases
}

/// The synthetic minimal corpus: one case per fault family the explorer
/// draws from, each the smallest schedule exercising that family against the
/// quick two-campus session. All are expected to replay clean — the session
/// must absorb each single fault without breaking any invariant.
fn corpus() -> Vec<(&'static str, RegressionCase)> {
    use metaclass_netsim::{NodeId, SimTime};
    // Quick-scenario layout: cloud=0; campus 0 is edge=1, array=2,
    // student=3, presenter=4; campus 1 is edge=5, array=6, student=7.
    let cloud = NodeId::from_index(0);
    let edge0 = NodeId::from_index(1);
    let edge1 = NodeId::from_index(5);
    let campus0: Vec<NodeId> = (1..=4).map(NodeId::from_index).collect();
    let campus1: Vec<NodeId> = (5..=7).map(NodeId::from_index).collect();
    let ms = SimTime::from_millis;

    let case = |description: &str, session_seed, windows| RegressionCase {
        schema_version: SCHEMA_VERSION,
        description: description.to_string(),
        quick: true,
        session_seed,
        windows,
        expect_violation: None,
    };

    vec![
        (
            "backbone-flap.json",
            case(
                "minimal backbone outage: edge-edge link flaps for 400 ms; \
                 degradation must hold and resync must converge",
                11,
                vec![FaultWindow::LinkFlap { a: edge0, b: edge1, from: ms(900), until: ms(1300) }],
            ),
        ),
        (
            "campus-partition.json",
            case(
                "minimal full-coverage partition: campus 1 isolated from \
                 campus 0 + cloud for 600 ms; nothing may cross while active",
                23,
                vec![FaultWindow::Partition {
                    groups: vec![
                        {
                            let mut g = vec![cloud];
                            g.extend(campus0.iter().copied());
                            g
                        },
                        campus1.clone(),
                    ],
                    from: ms(1000),
                    until: ms(1600),
                }],
            ),
        ),
        (
            "edge-crash-restart.json",
            case(
                "minimal crash/restart: campus 1 edge server dies for 500 ms; \
                 crashed node must stay silent, then fully resync",
                37,
                vec![FaultWindow::CrashRestart { node: edge1, from: ms(1100), until: ms(1600) }],
            ),
        ),
        (
            "cloud-loss-burst.json",
            case(
                "minimal loss burst: 60% iid loss on the edge0-cloud uplink \
                 for 800 ms; retransmission must keep every invariant",
                53,
                vec![FaultWindow::LossBurst {
                    a: edge0,
                    b: cloud,
                    from: ms(800),
                    until: ms(1600),
                    loss: metaclass_netsim::LossModel::Iid { p: 0.6 },
                }],
            ),
        ),
        (
            "latency-spike-overlap.json",
            case(
                "two overlapping latency spikes (backbone + uplink, 250 ms \
                 extra): staleness must recover once both clear",
                71,
                vec![
                    FaultWindow::LatencySpike {
                        a: edge0,
                        b: edge1,
                        from: ms(900),
                        until: ms(1700),
                        extra: metaclass_netsim::SimDuration::from_millis(250),
                    },
                    FaultWindow::LatencySpike {
                        a: edge1,
                        b: cloud,
                        from: ms(1200),
                        until: ms(1900),
                        extra: metaclass_netsim::SimDuration::from_millis(250),
                    },
                ],
            ),
        ),
    ]
}

/// Writes the corpus files. Run explicitly after intentional changes:
/// `cargo test --test regressions regenerate_corpus -- --ignored`
#[test]
#[ignore = "writes tests/regressions/*.json; run only to regenerate"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, case) in corpus() {
        std::fs::write(dir.join(name), case.to_json() + "\n").expect("write case");
    }
}

#[test]
fn corpus_is_present_and_loads() {
    let cases = load_corpus();
    assert!(
        cases.len() >= 3,
        "regression corpus must hold at least 3 cases, found {}",
        cases.len()
    );
    for (name, case) in &cases {
        assert_eq!(case.schema_version, SCHEMA_VERSION, "{name}");
        assert!(!case.windows.is_empty(), "{name}: a case without faults pins nothing");
    }
}

#[test]
fn committed_files_match_the_generator() {
    // Catches drift between the in-tree generator and the committed JSON
    // (e.g. a schema change without regeneration).
    let on_disk = load_corpus();
    let mut generated = corpus();
    generated.sort_by(|a, b| a.0.cmp(b.0));
    assert_eq!(on_disk.len(), generated.len(), "file count matches generator");
    for ((disk_name, disk_case), (gen_name, gen_case)) in on_disk.iter().zip(&generated) {
        assert_eq!(disk_name, gen_name);
        assert_eq!(
            disk_case.to_json(),
            gen_case.to_json(),
            "{disk_name} drifted; rerun: cargo test --test regressions regenerate_corpus -- --ignored"
        );
    }
}

#[test]
fn every_regression_case_replays_with_its_expected_outcome() {
    for (name, case) in load_corpus() {
        if let Err(divergence) = case.check() {
            panic!("{name}: {divergence}");
        }
    }
}
