//! Concurrency stress: whole sessions are `Send`, so experiment harnesses
//! can run seeded trials on worker threads. Determinism must survive
//! parallel execution — each trial's result depends only on its seed.

use metaclassroom::core::SessionBuilder;
use metaclassroom::netsim::{LinkClass, Region, SimDuration};

fn trial(seed: u64) -> (u64, f64) {
    let mut s = SessionBuilder::new()
        .seed(seed)
        .campus("CWB", Region::EastAsia, 4, true)
        .remote_cohort(Region::Europe, 2, LinkClass::ResidentialAccess)
        .build();
    s.run_for(SimDuration::from_secs(2));
    let r = s.report();
    (r.updates_sent, r.replication_bandwidth_bps())
}

#[test]
fn parallel_trials_match_serial_execution() {
    let seeds: Vec<u64> = (0..8).collect();

    // Serial reference.
    let serial: Vec<_> = seeds.iter().map(|&s| trial(s)).collect();

    // Parallel run on scoped threads.
    let mut parallel: Vec<Option<(u64, f64)>> = vec![None; seeds.len()];
    crossbeam::thread::scope(|scope| {
        for (slot, &seed) in parallel.iter_mut().zip(&seeds) {
            scope.spawn(move |_| {
                *slot = Some(trial(seed));
            });
        }
    })
    .expect("no trial panicked");

    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(Some(*s), *p, "trial {i} diverged between serial and parallel runs");
    }

    // Different seeds genuinely explore different executions.
    let distinct: std::collections::BTreeSet<u64> =
        serial.iter().map(|(updates, _)| *updates).collect();
    assert!(distinct.len() > 1, "all seeds produced identical traffic");
}

#[test]
fn sessions_can_be_moved_across_threads_mid_run() {
    let mut s = SessionBuilder::new().seed(3).campus("CWB", Region::EastAsia, 3, false).build();
    s.run_for(SimDuration::from_secs(1));
    let handle = std::thread::spawn(move || {
        s.run_for(SimDuration::from_secs(1));
        s.report().updates_sent
    });
    let sent = handle.join().expect("no panic");
    assert!(sent > 0);
}
