//! Golden transcripts and end-to-end guarantees for the canonical
//! scenario specs under `scenarios/`.
//!
//! Every committed spec is expanded at a pinned seed and its event-trace
//! fingerprint compared against `tests/scenarios/<name>.fp` — on the
//! serial *and* the sharded engine, so a byte of drift in the expander,
//! the DSL, or either engine fails loudly. The lab scenario's mobility
//! script is additionally checked for exact membership accounting (each
//! mover holds exactly one seat, the room census balances, no move is
//! lost), and the composed-stress scenario must pass every simcheck
//! invariant oracle with its scripted faults active.
//!
//! To regenerate the fingerprints after an intentional behavior change:
//!
//! ```text
//! cargo test --test scenario_golden regenerate_fingerprints -- --ignored
//! ```

use std::path::PathBuf;

use metaclass_avatar::AvatarId;
use metaclass_core::ScenarioSpec;
use metaclass_edge::CloudServerNode;
use metaclass_netsim::EngineConfig;
use metaclass_simcheck::{run_plan, standard_oracles, Scenario};

/// The seed every golden transcript is pinned to.
const GOLDEN_SEED: u64 = 2022;
/// Trace capacity: quick-scale canonical runs fit comfortably.
const TRACE_CAP: usize = 1 << 18;

fn spec_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn fp_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios")
}

fn canonical_specs() -> Vec<ScenarioSpec> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(spec_dir())
        .expect("scenarios/ exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 4, "at least the four canonical specs are committed");
    paths.iter().map(|p| ScenarioSpec::load(p).expect("canonical spec loads")).collect()
}

/// `"<trace-fingerprint-hex> <events-processed>"` for one expansion.
fn transcript(spec: &ScenarioSpec, engine: EngineConfig) -> String {
    let mut session = spec.build_session(GOLDEN_SEED, engine);
    session.sim_mut().enable_trace(TRACE_CAP);
    session.run_for(spec.duration());
    let trace = session.sim().trace().expect("trace enabled");
    format!("{} {}", trace.fingerprint_hex(), session.sim().events_processed())
}

/// Writes `tests/scenarios/<name>.fp`. Run explicitly after intentional
/// changes: `cargo test --test scenario_golden regenerate_fingerprints -- --ignored`
#[test]
#[ignore = "writes tests/scenarios/*.fp; run only to regenerate"]
fn regenerate_fingerprints() {
    let dir = fp_dir();
    std::fs::create_dir_all(&dir).expect("create fingerprint dir");
    for spec in canonical_specs() {
        let line = transcript(&spec, EngineConfig::serial());
        std::fs::write(dir.join(format!("{}.fp", spec.name)), line + "\n").expect("write fp");
    }
}

#[test]
fn canonical_specs_replay_their_committed_fingerprints_on_both_engines() {
    for spec in canonical_specs() {
        let path = fp_dir().join(format!("{}.fp", spec.name));
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden fingerprint ({e}); run: cargo test --test \
                 scenario_golden regenerate_fingerprints -- --ignored",
                path.display()
            )
        });
        let serial = transcript(&spec, EngineConfig::serial());
        let sharded = transcript(&spec, EngineConfig::sharded(4));
        assert_eq!(serial, sharded, "{}: serial and sharded transcripts diverged", spec.name);
        assert_eq!(
            committed.trim(),
            serial,
            "{}: transcript drifted from tests/scenarios/{}.fp; if intentional, regenerate",
            spec.name,
            spec.name
        );
    }
}

#[test]
fn golden_transcripts_are_stable_across_reruns() {
    let spec = ScenarioSpec::load(&spec_dir().join("lecture.toml")).expect("lecture spec");
    let a = transcript(&spec, EngineConfig::serial());
    let b = transcript(&spec, EngineConfig::serial());
    assert_eq!(a, b, "rerunning the same expansion must reproduce the transcript");
}

/// The lab scenario's mobility script, checked end to end: every scripted
/// move is applied exactly once, movers end up in their scripted rooms
/// holding exactly one seat each, and the cloud's room census balances.
#[test]
fn lab_mobility_is_accounted_exactly() {
    let spec = ScenarioSpec::load(&spec_dir().join("lab.toml")).expect("lab spec");
    let moves = spec.mobility.as_ref().expect("lab scripts mobility");
    let mut session = spec.build_session(GOLDEN_SEED, EngineConfig::serial());
    session.run_for(spec.duration());

    let metrics = session.sim().metrics();
    assert_eq!(
        metrics.counter_value("cloud.room_moves"),
        moves.len() as u64,
        "every scripted move is applied exactly once"
    );
    assert_eq!(metrics.counter_value("cloud.room_moves_ignored"), 0);
    assert_eq!(metrics.counter_value("cloud.seat_rejects"), 0, "every mover is reseated");

    let cloud = session.sim().node_as::<CloudServerNode>(session.cloud()).expect("cloud node");
    assert!(cloud.rooms_are_consistent(), "room census must balance the seat map");
    // Final rooms follow the script: learner 0 moved to room 1 and back,
    // learner 1 stayed in room 1, learner 4 moved to room 2.
    assert_eq!(cloud.room_of(AvatarId(10_000)), Some(0));
    assert_eq!(cloud.room_of(AvatarId(10_001)), Some(1));
    assert_eq!(cloud.room_of(AvatarId(10_004)), Some(2));
    assert_eq!(cloud.room_of(AvatarId(10_002)), Some(0), "unscripted learners stay put");
    let census = cloud.room_census();
    assert_eq!(census.get(&1).copied(), Some(1));
    assert_eq!(census.get(&2).copied(), Some(1));
}

/// The composed-stress scenario (flash crowd + scripted loss burst and
/// link flap + mobility on mixed platforms) passes every simcheck
/// invariant oracle — packet conservation, partition isolation, staleness
/// bounds, resync convergence — on both engines, with its scripted faults
/// lowered to fixed windows.
#[test]
fn stress_spec_passes_every_simcheck_oracle_on_both_engines() {
    let spec = ScenarioSpec::load(&spec_dir().join("stress.toml")).expect("stress spec");
    assert!(
        spec.stress.as_ref().is_some_and(|s| s.flash_crowd.is_some())
            && spec.stress.as_ref().is_some_and(|s| s.faults.is_some()),
        "the stress spec must compose a flash crowd with scripted faults"
    );
    for engine in [EngineConfig::serial(), EngineConfig::sharded(4)] {
        let mut scn = Scenario::quick(GOLDEN_SEED);
        scn.engine = engine;
        scn.spec = Some(spec.clone());
        let (_, topo) = scn.build();
        let windows = scn.fixed_windows(&topo);
        assert_eq!(windows.len(), 2, "both scripted faults lower to fixed windows");
        let out = run_plan(&scn, &windows, standard_oracles(&scn));
        assert!(
            out.violation.is_none(),
            "stress scenario violated an oracle on {engine:?}: {:?}",
            out.violation
        );
        assert!(out.events > 1000, "the stressed session actually ran");
    }
}
