#!/usr/bin/env bash
# One-shot quality gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh [--offline]
#
# Pass --offline (or set CARGO_NET_OFFLINE=true) to forbid registry access,
# e.g. on air-gapped CI runners with a pre-warmed cargo cache.
set -euo pipefail

cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
    case "$arg" in
        --offline) CARGO_FLAGS+=(--offline) ;;
        *)
            echo "unknown argument: $arg" >&2
            exit 2
            ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings
run cargo test --workspace -q "${CARGO_FLAGS[@]}"

# Smoke-test the sweep harness end to end: quick 4-seed sweeps of one
# analytic (e5), one simulation-backed (e2), and the flash-crowd overload
# experiment (e15, which self-checks goodput and queue bounds in-module),
# then validate the emitted documents against the schema (unknown/missing
# fields are errors).
run cargo build "${CARGO_FLAGS[@]}" -p metaclass-bench --bin bench
BENCH=target/debug/bench
# Drop stale sweep output first so --validate always sees this run's bytes.
rm -f results/BENCH_e5.json results/BENCH_e2.json results/BENCH_e15.json
run "$BENCH" --exp e5 --seeds 4 --quick --json
run "$BENCH" --exp e2 --seeds 4 --quick --json
run "$BENCH" --exp e15 --seeds 4 --quick --json
run "$BENCH" --validate results/BENCH_e5.json results/BENCH_e2.json \
    results/BENCH_e15.json

# Simcheck smoke: a small seeded exploration of random fault schedules with
# every invariant oracle attached — including the overload oracles
# (queue-bounds, admitted-liveness, shed-ladder-discipline), which every
# scenario's flash-crowd phase engages. Exit code 1 means an oracle fired.
# Run under both executors so the oracles also cover the sharded engine.
run "$BENCH" simcheck --seed 7 --cases 25
run "$BENCH" simcheck --seed 7 --cases 25 --engine sharded

# Scenario-matrix smoke: sweep a canonical file-registered workload spec
# and run the composed-stress spec (scripted faults + flash crowd) through
# the simcheck oracles, on both engines. The full byte-identity matrix
# lives in perf_gate.sh and the scenario-matrix CI job; this catches a
# broken expander or spec parse early.
rm -f results/BENCH_scenario_lab.json
run "$BENCH" --scenario scenarios/lab.toml --seeds 4 --quick --json
run "$BENCH" --validate results/BENCH_scenario_lab.json scenarios/*.toml
run "$BENCH" simcheck --seed 7 --cases 10 --scenario scenarios/stress.toml
run "$BENCH" simcheck --seed 7 --cases 10 --scenario scenarios/stress.toml \
    --engine sharded

echo "==> all checks passed"
