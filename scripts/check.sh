#!/usr/bin/env bash
# One-shot quality gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh [--offline]
#
# Pass --offline (or set CARGO_NET_OFFLINE=true) to forbid registry access,
# e.g. on air-gapped CI runners with a pre-warmed cargo cache.
set -euo pipefail

cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
    case "$arg" in
        --offline) CARGO_FLAGS+=(--offline) ;;
        *)
            echo "unknown argument: $arg" >&2
            exit 2
            ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings
run cargo test --workspace -q "${CARGO_FLAGS[@]}"

echo "==> all checks passed"
