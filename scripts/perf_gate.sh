#!/usr/bin/env bash
# Performance + determinism gate for CI.
#
# Regenerates the quick benchmark sweeps and fails if either
#   1. the emitted BENCH documents drift byte-for-byte from the committed
#      baselines in results/baselines/ (determinism regression: the sweep
#      output must be a pure function of experiment, scale, and seeds), or
#   2. the sweep wall time regresses more than PERF_GATE_TOLERANCE percent
#      (default 25) against the committed timing baseline, or
#   3. the timer-wheel scheduler loses its throughput edge over the
#      binary-heap baseline on the fan-out microbench (ratio below
#      PERF_GATE_MIN_SPEEDUP, default 1.1).
#
# Wall-clock numbers are recorded in results/TIMING_current.json — kept
# strictly outside the BENCH documents so those stay byte-reproducible.
#
# Usage:
#   scripts/perf_gate.sh                     # run the gate
#   scripts/perf_gate.sh --update-baselines  # re-bless baselines (after an
#                                            # intentional output change)
set -euo pipefail

cd "$(dirname "$0")/.."

TOLERANCE="${PERF_GATE_TOLERANCE:-25}"
MIN_SPEEDUP="${PERF_GATE_MIN_SPEEDUP:-1.1}"
BASELINES=results/baselines
UPDATE=0
for arg in "$@"; do
    case "$arg" in
        --update-baselines) UPDATE=1 ;;
        *)
            echo "unknown argument: $arg" >&2
            exit 2
            ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

now_ms() {
    echo $(($(date +%s%N) / 1000000))
}

run cargo build --release --offline -q -p metaclass-bench --bin bench
BENCH=target/release/bench
mkdir -p results "$BASELINES"

# --- fresh quick sweeps (the determinism source of truth) -------------------
rm -f results/BENCH_e2.json results/BENCH_e5.json

# Wall time: best of three runs per experiment, to shrug off scheduler noise.
e2_ms=""
e5_ms=""
for _ in 1 2 3; do
    rm -f results/BENCH_e2.json results/BENCH_e5.json
    t0=$(now_ms)
    "$BENCH" --exp e2 --seeds 4 --quick --json > /dev/null
    t1=$(now_ms)
    "$BENCH" --exp e5 --seeds 4 --quick --json > /dev/null
    t2=$(now_ms)
    d2=$((t1 - t0))
    d5=$((t2 - t1))
    if [ -z "$e2_ms" ] || [ "$d2" -lt "$e2_ms" ]; then e2_ms=$d2; fi
    if [ -z "$e5_ms" ] || [ "$d5" -lt "$e5_ms" ]; then e5_ms=$d5; fi
done
run "$BENCH" --validate results/BENCH_e2.json results/BENCH_e5.json

printf '{\n  "e2_quick_ms": %s,\n  "e5_quick_ms": %s\n}\n' "$e2_ms" "$e5_ms" \
    > results/TIMING_current.json
echo "==> sweep wall time: e2=${e2_ms}ms e5=${e5_ms}ms"

# --- scheduler microbench: wheel must beat the heap baseline ----------------
run cargo bench --offline -p metaclass-netsim --bench sched -- sched_fanout
median_ns() {
    sed -n 's/.*"median_ns": \([0-9.]*\).*/\1/p' "$1"
}
wheel_ns=$(median_ns target/criterion/sched_fanout/wheel/stream_100x100/estimates.json)
heap_ns=$(median_ns target/criterion/sched_fanout/heap/stream_100x100/estimates.json)

if [ "$UPDATE" -eq 1 ]; then
    cp results/BENCH_e2.json results/BENCH_e5.json "$BASELINES/"
    cp results/TIMING_current.json "$BASELINES/TIMING_baseline.json"
    echo "==> baselines updated in $BASELINES/"
    exit 0
fi

# --- gate 1: byte-identical sweep documents ---------------------------------
fail=0
for exp in e2 e5; do
    if ! cmp -s "$BASELINES/BENCH_$exp.json" "results/BENCH_$exp.json"; then
        echo "FAIL: results/BENCH_$exp.json drifted from $BASELINES/BENCH_$exp.json" >&2
        echo "      (determinism regression, or an intentional change needing" >&2
        echo "       scripts/perf_gate.sh --update-baselines)" >&2
        fail=1
    else
        echo "==> BENCH_$exp.json byte-identical to baseline"
    fi
done

# --- gate 2: sweep wall time ------------------------------------------------
for exp in e2 e5; do
    cur_var="${exp}_ms"
    cur=${!cur_var}
    base=$(sed -n "s/.*\"${exp}_quick_ms\": \([0-9]*\).*/\1/p" \
        "$BASELINES/TIMING_baseline.json")
    if [ -z "$base" ]; then
        echo "FAIL: no ${exp}_quick_ms in $BASELINES/TIMING_baseline.json" >&2
        fail=1
        continue
    fi
    # Integer-ms floor: under ~40 ms the granularity eats the tolerance.
    limit=$(((base + 40) * (100 + TOLERANCE) / 100))
    if [ "$cur" -gt "$limit" ]; then
        echo "FAIL: $exp quick sweep took ${cur}ms > ${limit}ms" \
            "(baseline ${base}ms + ${TOLERANCE}% tolerance)" >&2
        fail=1
    else
        echo "==> $exp wall time ${cur}ms within ${limit}ms budget"
    fi
done

# --- gate 3: wheel vs heap ratio --------------------------------------------
if [ -z "$wheel_ns" ] || [ -z "$heap_ns" ]; then
    echo "FAIL: missing criterion estimates for the sched_fanout benches" >&2
    fail=1
else
    ratio=$(awk -v h="$heap_ns" -v w="$wheel_ns" 'BEGIN { printf "%.2f", h / w }')
    ok=$(awk -v r="$ratio" -v m="$MIN_SPEEDUP" 'BEGIN { print (r >= m) ? 1 : 0 }')
    if [ "$ok" -ne 1 ]; then
        echo "FAIL: wheel/heap fan-out speedup ${ratio}x < required ${MIN_SPEEDUP}x" >&2
        fail=1
    else
        echo "==> wheel beats heap ${ratio}x on fan-out (>= ${MIN_SPEEDUP}x)"
    fi
fi

if [ "$fail" -ne 0 ]; then
    echo "==> perf gate FAILED" >&2
    exit 1
fi
echo "==> perf gate passed"
