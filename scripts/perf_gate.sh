#!/usr/bin/env bash
# Performance + determinism gate for CI.
#
# Regenerates the quick benchmark sweeps and fails if any of:
#   1. the emitted BENCH documents (all registered experiments plus every
#      scenarios/*.toml workload spec) drift
#      byte-for-byte from the committed baselines in results/baselines/
#      (determinism regression: the sweep output must be a pure function of
#      experiment, scale, and seeds), or
#   2. the e2/e5 quick sweep wall time regresses more than
#      PERF_GATE_TOLERANCE percent (default 25) against the committed timing
#      baseline, or
#   3. the timer-wheel scheduler loses its throughput edge over the
#      binary-heap baseline on the fan-out microbench (ratio below
#      PERF_GATE_MIN_SPEEDUP, default 1.1), or
#   4. the sharded execution engine fails to reproduce any BENCH document
#      byte-for-byte (the committed baselines double as the correctness
#      oracle for the parallel engine), or
#   5. the engine_shard criterion bench shows the sharded engine off its
#      budget on the E3 topology: on hosts with >= 4 cores this is an
#      affirmative speedup gate — serial/sharded_4 must reach
#      PERF_GATE_SHARD_SPEEDUP (default 1.5) — on smaller hosts a real
#      speedup is physically impossible, so the speedup gate is skipped
#      with a visible notice and the gate instead bounds the coordination
#      overhead at PERF_GATE_SHARD_OVERHEAD (default 2.0) times the serial
#      wall time.
#
# The full shard-count sweep (serial, 1, 2, 4, 8) is printed as a
# serial-vs-sharded delta table — per-row wall time, speedup over serial,
# delta against the committed baseline, and the crossover shard count — and
# written to results/TIMING_delta.txt for CI artifact upload.
#
# Wall-clock numbers are recorded in results/TIMING_current.json — kept
# strictly outside the BENCH documents so those stay byte-reproducible.
#
# Usage:
#   scripts/perf_gate.sh                     # run the gate
#   scripts/perf_gate.sh --update-baselines  # re-bless baselines (after an
#                                            # intentional output change)
set -euo pipefail

cd "$(dirname "$0")/.."

TOLERANCE="${PERF_GATE_TOLERANCE:-25}"
MIN_SPEEDUP="${PERF_GATE_MIN_SPEEDUP:-1.1}"
SHARD_SPEEDUP="${PERF_GATE_SHARD_SPEEDUP:-1.5}"
SHARD_OVERHEAD="${PERF_GATE_SHARD_OVERHEAD:-2.0}"
BASELINES=results/baselines
ALL_EXPS="e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15"
# File-registered scenario specs ride the same determinism gates: every
# scenarios/<name>.toml sweeps to results/BENCH_scenario_<name>.json and is
# held to the byte-identity bar of the eN experiments.
SCENARIOS=""
SCENARIO_ARGS=()
for f in scenarios/*.toml; do
    [ -e "$f" ] || continue
    name=$(basename "$f" .toml)
    SCENARIOS="$SCENARIOS scenario_$name"
    SCENARIO_ARGS+=(--scenario "$f")
done
UPDATE=0
for arg in "$@"; do
    case "$arg" in
        --update-baselines) UPDATE=1 ;;
        *)
            echo "unknown argument: $arg" >&2
            exit 2
            ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

now_ms() {
    echo $(($(date +%s%N) / 1000000))
}

run cargo build --release --offline -q -p metaclass-bench --bin bench
BENCH=target/release/bench
mkdir -p results "$BASELINES"

# --- wall time: best of three e2/e5 runs, to shrug off scheduler noise ------
e2_ms=""
e5_ms=""
for _ in 1 2 3; do
    rm -f results/BENCH_e2.json results/BENCH_e5.json
    t0=$(now_ms)
    "$BENCH" --exp e2 --seeds 4 --quick --json > /dev/null
    t1=$(now_ms)
    "$BENCH" --exp e5 --seeds 4 --quick --json > /dev/null
    t2=$(now_ms)
    d2=$((t1 - t0))
    d5=$((t2 - t1))
    if [ -z "$e2_ms" ] || [ "$d2" -lt "$e2_ms" ]; then e2_ms=$d2; fi
    if [ -z "$e5_ms" ] || [ "$d5" -lt "$e5_ms" ]; then e5_ms=$d5; fi
done
echo "==> sweep wall time: e2=${e2_ms}ms e5=${e5_ms}ms"

# --- fresh quick sweeps, both engines (the determinism source of truth) -----
bench_files=""
for exp in $ALL_EXPS $SCENARIOS; do
    bench_files="$bench_files results/BENCH_$exp.json"
done
# shellcheck disable=SC2086  # word-splitting the file list is intentional
rm -f $bench_files
run "$BENCH" --exp all --seeds 4 --quick --json > /dev/null
if [ "${#SCENARIO_ARGS[@]}" -gt 0 ]; then
    run "$BENCH" "${SCENARIO_ARGS[@]}" --seeds 4 --quick --json > /dev/null
fi
# shellcheck disable=SC2086
run "$BENCH" --validate $bench_files scenarios/*.toml

serial_tmp=$(mktemp -d results/.serial.XXXXXX)
trap 'rm -rf "$serial_tmp"' EXIT
# shellcheck disable=SC2086
cp $bench_files "$serial_tmp/"
run "$BENCH" --exp all --seeds 4 --quick --json --engine sharded > /dev/null
if [ "${#SCENARIO_ARGS[@]}" -gt 0 ]; then
    run "$BENCH" "${SCENARIO_ARGS[@]}" --seeds 4 --quick --json --engine sharded > /dev/null
fi

# --- scheduler microbench: wheel must beat the heap baseline ----------------
run cargo bench --offline -p metaclass-netsim --bench sched -- sched_fanout
median_ns() {
    sed -n 's/.*"median_ns": \([0-9.]*\).*/\1/p' "$1"
}
wheel_ns=$(median_ns target/criterion/sched_fanout/wheel/stream_100x100/estimates.json)
heap_ns=$(median_ns target/criterion/sched_fanout/heap/stream_100x100/estimates.json)

# --- engine microbench: serial vs the full shard-count sweep on E3 ----------
run cargo bench --offline -p metaclass-bench --bench engine_shard -- engine_shard
eng_serial_ns=$(median_ns target/criterion/engine_shard/e3_one_second_serial/estimates.json)
eng_shard1_ns=$(median_ns target/criterion/engine_shard/e3_one_second_sharded_1/estimates.json)
eng_shard2_ns=$(median_ns target/criterion/engine_shard/e3_one_second_sharded_2/estimates.json)
eng_shard4_ns=$(median_ns target/criterion/engine_shard/e3_one_second_sharded_4/estimates.json)
eng_shard8_ns=$(median_ns target/criterion/engine_shard/e3_one_second_sharded_8/estimates.json)

printf '{\n  "e2_quick_ms": %s,\n  "e5_quick_ms": %s,\n  "engine_shard_serial_ns": %s,\n  "engine_shard_sharded1_ns": %s,\n  "engine_shard_sharded2_ns": %s,\n  "engine_shard_sharded4_ns": %s,\n  "engine_shard_sharded8_ns": %s\n}\n' \
    "$e2_ms" "$e5_ms" "${eng_serial_ns:-0}" "${eng_shard1_ns:-0}" \
    "${eng_shard2_ns:-0}" "${eng_shard4_ns:-0}" "${eng_shard8_ns:-0}" \
    > results/TIMING_current.json

# --- serial-vs-sharded delta table ------------------------------------------
# One row per engine_shard config: wall time, speedup over serial, delta vs
# the committed baseline (when it records that config), crossover marker.
baseline_ns() {
    sed -n "s/.*\"$1\": \([0-9.]*\).*/\1/p" "$BASELINES/TIMING_baseline.json" 2>/dev/null
}
delta_table() {
    echo "engine_shard (E3, one simulated second) — serial vs sharded"
    printf '%-12s %10s %9s %12s\n' "config" "median" "vs serial" "vs baseline"
    crossover=""
    for cfg in serial sharded_1 sharded_2 sharded_4 sharded_8; do
        case "$cfg" in
            serial) ns=$eng_serial_ns ;;
            sharded_1) ns=$eng_shard1_ns ;;
            sharded_2) ns=$eng_shard2_ns ;;
            sharded_4) ns=$eng_shard4_ns ;;
            sharded_8) ns=$eng_shard8_ns ;;
        esac
        if [ -z "$ns" ]; then
            printf '%-12s %10s %9s %12s\n' "$cfg" "missing" "-" "-"
            continue
        fi
        ms=$(awk -v n="$ns" 'BEGIN { printf "%.1fms", n / 1e6 }')
        if [ "$cfg" = serial ]; then
            sp="1.00x"
        else
            sp=$(awk -v s="$eng_serial_ns" -v p="$ns" 'BEGIN { printf "%.2fx", s / p }')
            if [ -z "$crossover" ] &&
                [ "$(awk -v s="$eng_serial_ns" -v p="$ns" 'BEGIN { print (s > p) ? 1 : 0 }')" = 1 ]; then
                crossover=$cfg
                sp="$sp*"
            fi
        fi
        base=$(baseline_ns "engine_shard_${cfg/_/}_ns")
        if [ -n "$base" ] && [ "$base" != 0 ]; then
            dv=$(awk -v n="$ns" -v b="$base" 'BEGIN { printf "%+.1f%%", (n - b) * 100 / b }')
        else
            dv="-"
        fi
        printf '%-12s %10s %9s %12s\n' "$cfg" "$ms" "$sp" "$dv"
    done
    if [ -n "$crossover" ]; then
        echo "crossover: $crossover is the first shard count to beat serial (*)"
    else
        echo "crossover: none — no shard count beat serial on this host ($(nproc 2>/dev/null || echo 1) cores)"
    fi
}
delta_table | tee results/TIMING_delta.txt

if [ "$UPDATE" -eq 1 ]; then
    # shellcheck disable=SC2086
    cp $bench_files "$BASELINES/"
    cp results/TIMING_current.json "$BASELINES/TIMING_baseline.json"
    echo "==> baselines updated in $BASELINES/"
    exit 0
fi

fail=0

# --- gate 4: the sharded engine reproduces every document byte-for-byte -----
for exp in $ALL_EXPS $SCENARIOS; do
    if ! cmp -s "$serial_tmp/BENCH_$exp.json" "results/BENCH_$exp.json"; then
        echo "FAIL: BENCH_$exp.json differs between --engine serial and sharded" >&2
        echo "      (the parallel engine broke byte-identical replay)" >&2
        fail=1
    fi
done
if [ "$fail" -eq 0 ]; then
    echo "==> sharded engine reproduced all $(echo "$ALL_EXPS $SCENARIOS" | wc -w) documents byte-for-byte"
fi
# Leave the serial output in results/ (identical when the gate holds, and the
# unambiguous source of truth when it does not).
# shellcheck disable=SC2086
cp "$serial_tmp"/BENCH_*.json results/

# --- gate 1: byte-identical sweep documents ---------------------------------
for exp in $ALL_EXPS $SCENARIOS; do
    if ! cmp -s "$BASELINES/BENCH_$exp.json" "results/BENCH_$exp.json"; then
        echo "FAIL: results/BENCH_$exp.json drifted from $BASELINES/BENCH_$exp.json" >&2
        echo "      (determinism regression, or an intentional change needing" >&2
        echo "       scripts/perf_gate.sh --update-baselines)" >&2
        fail=1
    else
        echo "==> BENCH_$exp.json byte-identical to baseline"
    fi
done

# --- gate 2: sweep wall time ------------------------------------------------
for exp in e2 e5; do
    cur_var="${exp}_ms"
    cur=${!cur_var}
    base=$(sed -n "s/.*\"${exp}_quick_ms\": \([0-9]*\).*/\1/p" \
        "$BASELINES/TIMING_baseline.json")
    if [ -z "$base" ]; then
        echo "FAIL: no ${exp}_quick_ms in $BASELINES/TIMING_baseline.json" >&2
        fail=1
        continue
    fi
    # Integer-ms floor: under ~40 ms the granularity eats the tolerance.
    limit=$(((base + 40) * (100 + TOLERANCE) / 100))
    if [ "$cur" -gt "$limit" ]; then
        echo "FAIL: $exp quick sweep took ${cur}ms > ${limit}ms" \
            "(baseline ${base}ms + ${TOLERANCE}% tolerance)" >&2
        fail=1
    else
        echo "==> $exp wall time ${cur}ms within ${limit}ms budget"
    fi
done

# --- gate 3: wheel vs heap ratio --------------------------------------------
if [ -z "$wheel_ns" ] || [ -z "$heap_ns" ]; then
    echo "FAIL: missing criterion estimates for the sched_fanout benches" >&2
    fail=1
else
    ratio=$(awk -v h="$heap_ns" -v w="$wheel_ns" 'BEGIN { printf "%.2f", h / w }')
    ok=$(awk -v r="$ratio" -v m="$MIN_SPEEDUP" 'BEGIN { print (r >= m) ? 1 : 0 }')
    if [ "$ok" -ne 1 ]; then
        echo "FAIL: wheel/heap fan-out speedup ${ratio}x < required ${MIN_SPEEDUP}x" >&2
        fail=1
    else
        echo "==> wheel beats heap ${ratio}x on fan-out (>= ${MIN_SPEEDUP}x)"
    fi
fi

# --- gate 5: sharded engine speedup (or overhead bound on small hosts) ------
if [ -z "$eng_serial_ns" ] || [ -z "$eng_shard4_ns" ]; then
    echo "FAIL: missing criterion estimates for the engine_shard benches" >&2
    fail=1
else
    cores=$(nproc 2>/dev/null || echo 1)
    eratio=$(awk -v s="$eng_serial_ns" -v p="$eng_shard4_ns" 'BEGIN { printf "%.2f", s / p }')
    if [ "$cores" -ge 4 ]; then
        ok=$(awk -v r="$eratio" -v m="$SHARD_SPEEDUP" 'BEGIN { print (r >= m) ? 1 : 0 }')
        if [ "$ok" -ne 1 ]; then
            echo "FAIL: sharded_4/serial E3 speedup ${eratio}x < required" \
                "${SHARD_SPEEDUP}x on a ${cores}-core host" >&2
            fail=1
        else
            echo "==> sharded engine ${eratio}x over serial on E3 (>= ${SHARD_SPEEDUP}x, ${cores} cores)"
        fi
    else
        # Fewer worker cores than shards: the parallel engine cannot win, so
        # hold the line on coordination overhead instead.
        echo "==> SKIP: sharded speedup gate needs >= 4 cores, host has ${cores};" \
            "checking the ${SHARD_OVERHEAD}x overhead bound instead"
        bound=$(awk -v s="$eng_serial_ns" -v o="$SHARD_OVERHEAD" 'BEGIN { printf "%.0f", s * o }')
        ok=$(awk -v p="$eng_shard4_ns" -v b="$bound" 'BEGIN { print (p <= b) ? 1 : 0 }')
        if [ "$ok" -ne 1 ]; then
            echo "FAIL: sharded_4 E3 run ${eng_shard4_ns}ns exceeds" \
                "${SHARD_OVERHEAD}x serial (${eng_serial_ns}ns) on a ${cores}-core host" >&2
            fail=1
        else
            echo "==> sharded overhead within ${SHARD_OVERHEAD}x serial" \
                "(${cores}-core host; speedup ratio ${eratio}x)"
        fi
    fi
fi

if [ "$fail" -ne 0 ]; then
    echo "==> perf gate FAILED" >&2
    exit 1
fi
echo "==> perf gate passed"
