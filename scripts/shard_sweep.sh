#!/usr/bin/env bash
# Nightly shard-count sweep: runs the engine_shard criterion bench at
# serial and 1/2/4/8 shards, prints the sweep table with the crossover
# point, and holds each shard count to the committed speedup envelope in
# results/baselines/SHARD_ENVELOPE.json.
#
# Envelope semantics (core-count aware):
#   - On hosts with >= min_cores cores, every config listed in min_speedup
#     must reach its serial/sharded wall-time ratio.
#   - On smaller hosts a real speedup is physically impossible, so every
#     sharded config is instead bounded at max_overhead x serial.
#   - sharded_1 (the planner's serial fallback) is always held to the
#     overhead bound: it must track serial, not beat it.
#
# Results land in results/SHARD_SWEEP.txt for CI artifact upload.
#
# Usage: scripts/shard_sweep.sh
set -euo pipefail

cd "$(dirname "$0")/.."

ENVELOPE=results/baselines/SHARD_ENVELOPE.json
OUT=results/SHARD_SWEEP.txt

envelope_val() {
    sed -n "s/.*\"$1\": \([0-9.]*\).*/\1/p" "$ENVELOPE"
}
MIN_CORES=$(envelope_val min_cores)
MAX_OVERHEAD=$(envelope_val max_overhead)
cores=$(nproc 2>/dev/null || echo 1)

echo "==> shard sweep on a ${cores}-core host (envelope needs >= ${MIN_CORES} for speedup floors)"
cargo bench --offline -p metaclass-bench --bench engine_shard -- engine_shard

median_ns() {
    sed -n 's/.*"median_ns": \([0-9.]*\).*/\1/p' \
        "target/criterion/engine_shard/e3_one_second_$1/estimates.json"
}
serial_ns=$(median_ns serial)
if [ -z "$serial_ns" ]; then
    echo "FAIL: no criterion estimate for the serial engine_shard bench" >&2
    exit 1
fi

fail=0
crossover=""
{
    echo "engine_shard shard-count sweep (E3, one simulated second, ${cores} cores)"
    printf '%-12s %10s %9s %9s %8s\n' "config" "median" "vs serial" "floor" "verdict"
    printf '%-12s %10s %9s %9s %8s\n' "serial" \
        "$(awk -v n="$serial_ns" 'BEGIN { printf "%.1fms", n / 1e6 }')" "1.00x" "-" "-"
    for cfg in sharded_1 sharded_2 sharded_4 sharded_8; do
        ns=$(median_ns "$cfg")
        if [ -z "$ns" ]; then
            printf '%-12s %10s %9s %9s %8s\n' "$cfg" "missing" "-" "-" "FAIL"
            fail=1
            continue
        fi
        ms=$(awk -v n="$ns" 'BEGIN { printf "%.1fms", n / 1e6 }')
        sp=$(awk -v s="$serial_ns" -v p="$ns" 'BEGIN { printf "%.2f", s / p }')
        if [ -z "$crossover" ] && awk -v r="$sp" 'BEGIN { exit !(r > 1.0) }'; then
            crossover=$cfg
        fi
        floor=$(envelope_val "$cfg")
        if [ "$cfg" != sharded_1 ] && [ "$cores" -ge "$MIN_CORES" ] && [ -n "$floor" ]; then
            # Affirmative speedup floor.
            if awk -v r="$sp" -v f="$floor" 'BEGIN { exit !(r >= f) }'; then
                verdict=ok
            else
                verdict=FAIL
                fail=1
            fi
            printf '%-12s %10s %8sx %8sx %8s\n' "$cfg" "$ms" "$sp" "$floor" "$verdict"
        else
            # Overhead bound: sharded run must stay under MAX_OVERHEAD x serial.
            if awk -v s="$serial_ns" -v p="$ns" -v o="$MAX_OVERHEAD" 'BEGIN { exit !(p <= s * o) }'; then
                verdict=ok
            else
                verdict=FAIL
                fail=1
            fi
            printf '%-12s %10s %8sx %9s %8s\n' "$cfg" "$ms" "$sp" "<=${MAX_OVERHEAD}x" "$verdict"
        fi
    done
    if [ -n "$crossover" ]; then
        echo "crossover: $crossover is the first shard count to beat serial"
    else
        echo "crossover: none — no shard count beat serial on this host"
    fi
} | tee "$OUT"

if [ "$fail" -ne 0 ]; then
    echo "==> shard sweep FAILED the committed envelope" >&2
    exit 1
fi
echo "==> shard sweep within the committed envelope"
